"""Tests for dynamic multi-tenancy: churn, lifetimes, phases, preemption.

The three acceptance properties of the dynamic-session subsystem:

(a) no work of a session is *dispatched* outside its
    ``[arrival_s, departure_s)`` window;
(b) per-session QoE normalises by the session's *active* (not streamed)
    duration;
(c) two identical churned runs are bit-identical.

Static sessions staying bit-identical to the pre-churn runtime is pinned
separately by the golden checksums in ``test_schedule_equivalence.py``.
"""

from __future__ import annotations

import pytest

from repro.api import RunSpec, execute
from repro.hardware import build_accelerator
from repro.runtime import (
    MultiScenarioSimulator,
    SessionPhase,
    SessionSpec,
    make_scheduler,
)
from repro.workload import churn_windows, get_scenario

DURATION_S = 0.5


@pytest.fixture(scope="module")
def vr():
    return get_scenario("vr_gaming")


@pytest.fixture(scope="module")
def system():
    return build_accelerator("J", 8192)


def churned_result(scheduler="latency_greedy", granularity="model",
                   sessions=4, churn=0.4, seed=0):
    windows = churn_windows(sessions, DURATION_S, churn, seed)
    return MultiScenarioSimulator.replicate(
        get_scenario("vr_gaming"),
        build_accelerator("J", 8192),
        make_scheduler(scheduler),
        sessions,
        base_seed=seed,
        duration_s=DURATION_S,
        granularity=granularity,
        windows=windows,
    ).run(), windows


class TestWindowContainment:
    @pytest.mark.parametrize("granularity", ["model", "segment"])
    @pytest.mark.parametrize(
        "scheduler", ["latency_greedy", "round_robin", "edf",
                      "rate_monotonic"],
    )
    def test_no_dispatch_outside_window(self, scheduler, granularity):
        result, windows = churned_result(scheduler, granularity)
        assert result.records, "churned run dispatched nothing"
        for record in result.records:
            window = windows[record.session_id]
            assert record.start_s >= window.arrival_s, (
                f"session {record.session_id} dispatched {record} before "
                f"its arrival {window.arrival_s}"
            )
            assert record.start_s < window.departure_s, (
                f"session {record.session_id} dispatched {record} after "
                f"its departure {window.departure_s}"
            )

    def test_every_session_gets_work(self):
        result, _ = churned_result()
        for session in result.sessions:
            assert session.records, (
                f"session {session.session_id} never ran"
            )

    def test_departure_retires_waiting_work(self, vr, system):
        # One engine, two sessions: overload guarantees work is waiting
        # when session 1 departs, and that work must be marked dropped.
        small = build_accelerator("A", 1024)
        result = MultiScenarioSimulator(
            sessions=[
                SessionSpec(0, vr, seed=0),
                SessionSpec(1, vr, seed=1, departure_s=DURATION_S / 2),
            ],
            system=small,
            scheduler=make_scheduler("latency_greedy"),
            duration_s=DURATION_S,
        ).run()
        late = result.session(1)
        cutoff = DURATION_S / 2
        for record in late.records:
            assert record.start_s < cutoff
        # Frames streamed before departure that never got to run are
        # dropped, not silently forgotten.
        undispatched = [
            r for r in late.requests if r.dropped and r.start_time_s is None
        ]
        assert undispatched, "expected retired waiting work at departure"
        # And nothing of session 1 completes past the cutoff's drain:
        # started work may finish late, but never *starts* late.
        assert all(
            r.start_time_s is None or r.start_time_s < cutoff
            for r in late.requests
        )


class TestActiveDurationNormalisation:
    def test_streamed_frames_scale_with_window(self, vr, system):
        # A session online for ~half the run streams ~half the frames of
        # a full-run session with the same scenario.
        result = MultiScenarioSimulator(
            sessions=[
                SessionSpec(0, vr, seed=0),
                SessionSpec(
                    1, vr, seed=0,
                    arrival_s=DURATION_S / 4,
                    departure_s=3 * DURATION_S / 4,
                ),
            ],
            system=system,
            scheduler=make_scheduler("latency_greedy"),
            duration_s=DURATION_S,
        ).run()
        full, half = result.session(0), result.session(1)
        assert half.active_duration_s == pytest.approx(DURATION_S / 2)
        assert half.window_s == pytest.approx(DURATION_S / 2)
        assert full.active_duration_s is None
        assert full.window_s == DURATION_S
        for code in ("HT", "ES"):
            assert half.num_frames(code) <= full.num_frames(code)
            assert half.num_frames(code) == pytest.approx(
                full.num_frames(code) / 2, abs=2
            )

    def test_qoe_not_punished_for_inactive_time(self, vr, system):
        # On an uncontended system the half-window session executes all
        # its (fewer) frames: QoE ~1 despite being online half the run.
        from repro.core.aggregate import score_simulation

        result = MultiScenarioSimulator(
            sessions=[
                SessionSpec(
                    0, vr, seed=0,
                    arrival_s=DURATION_S / 4,
                    departure_s=3 * DURATION_S / 4,
                ),
            ],
            system=system,
            scheduler=make_scheduler("latency_greedy"),
            duration_s=DURATION_S,
        ).run()
        score = score_simulation(result.sessions[0])
        assert score.qoe > 0.9

    def test_utilization_normalises_by_active_window(self, vr, system):
        result = MultiScenarioSimulator(
            sessions=[SessionSpec(
                0, vr, seed=0,
                arrival_s=DURATION_S / 4,
                departure_s=3 * DURATION_S / 4,
            )],
            system=system,
            scheduler=make_scheduler("latency_greedy"),
            duration_s=DURATION_S,
        ).run()
        session = result.sessions[0]
        busy = session.busy_time_s[0]
        assert session.utilization(0) == pytest.approx(
            busy / (DURATION_S / 2)
        )


class TestDeterminism:
    def test_identical_churned_specs_are_bit_identical(self):
        spec = RunSpec(
            scenario="vr_gaming", sessions=4, duration_s=DURATION_S,
            churn=0.4, accelerator="J", pes=8192,
        )
        a, b = execute(spec), execute(spec)
        ra = [
            (r.start_s, r.end_s, r.sub_index, r.session_id, r.model_code)
            for r in a.result.records
        ]
        rb = [
            (r.start_s, r.end_s, r.sub_index, r.session_id, r.model_code)
            for r in b.result.records
        ]
        assert ra == rb
        assert [s.score.overall for s in a.session_reports] == [
            s.score.overall for s in b.session_reports
        ]
        assert a.summary() == b.summary()

    def test_zero_churn_matches_static_path(self, vr, system):
        spec = RunSpec(
            scenario="vr_gaming", sessions=4, duration_s=DURATION_S,
            accelerator="J", pes=8192,
        )
        static = execute(spec)
        churned = execute(spec.replace(churn=0.0))
        assert [
            (r.start_s, r.sub_index, r.model_code)
            for r in static.result.records
        ] == [
            (r.start_s, r.sub_index, r.model_code)
            for r in churned.result.records
        ]


class TestPhases:
    def phased_result(self, system):
        return MultiScenarioSimulator(
            sessions=[SessionSpec(
                0,
                get_scenario("ar_gaming"),
                seed=0,
                phases=(SessionPhase(
                    at_s=DURATION_S / 2,
                    scenario=get_scenario("social_interaction_a"),
                ),),
            )],
            system=system,
            scheduler=make_scheduler("latency_greedy"),
            duration_s=DURATION_S,
        ).run()

    def test_scored_against_merged_scenario(self, system):
        session = self.phased_result(system).sessions[0]
        assert session.scenario.name == (
            "ar_gaming+social_interaction_a"
        )
        codes = {sm.code for sm in session.scenario.models}
        ar = {sm.code for sm in get_scenario("ar_gaming").models}
        social = {
            sm.code for sm in get_scenario("social_interaction_a").models
        }
        assert codes == ar | social

    def test_phase_switch_changes_streamed_models(self, system):
        session = self.phased_result(system).sessions[0]
        ar_only = {
            sm.code for sm in get_scenario("ar_gaming").models
        } - {
            sm.code for sm in get_scenario("social_interaction_a").models
        }
        social_only = {
            sm.code for sm in get_scenario("social_interaction_a").models
        } - {sm.code for sm in get_scenario("ar_gaming").models}
        assert ar_only and social_only, "scenarios must differ for this test"
        switch = DURATION_S / 2
        for record in session.records:
            if record.model_code in ar_only:
                assert record.start_s < switch
        late_models = {
            r.model_code for r in session.records if r.start_s >= switch
        }
        assert late_models & social_only, (
            "second phase never streamed its own models"
        )

    def test_phased_session_is_scorable(self, system):
        from repro.core.aggregate import score_simulation

        score = score_simulation(self.phased_result(system).sessions[0])
        assert 0.0 <= score.overall <= 1.0

    def test_phase_change_retires_stale_segment_chains(self):
        # Segment granularity on a slow system: chains from the first
        # activity must not have new segments dispatched after the
        # switch (the running segment finishes; the chain stops).
        switch = DURATION_S / 2
        result = MultiScenarioSimulator(
            sessions=[SessionSpec(
                0,
                get_scenario("ar_gaming"),
                seed=0,
                phases=(SessionPhase(
                    at_s=switch,
                    scenario=get_scenario("social_interaction_a"),
                ),),
            )],
            system=build_accelerator("A", 1024),
            scheduler=make_scheduler("latency_greedy"),
            duration_s=DURATION_S,
            granularity="segment",
        ).run()
        ar_only = {
            sm.code for sm in get_scenario("ar_gaming").models
        } - {sm.code for sm in get_scenario("social_interaction_a").models}
        for record in result.records:
            if record.model_code in ar_only:
                assert record.start_s < switch, (
                    f"stale first-activity segment dispatched after the "
                    f"phase change: {record}"
                )


class TestPreemption:
    def run_spec(self, preemptive):
        # 4096 PEs keeps the system contended enough that resumable
        # chains and urgent fresh work actually compete for engines.
        return execute(RunSpec(
            scenario="vr_gaming", sessions=4, duration_s=DURATION_S,
            granularity="segment", scheduler="edf",
            preemptive=preemptive, accelerator="J", pes=4096,
        ))

    def test_preemption_changes_the_schedule(self):
        on = self.run_spec(True).result
        off = self.run_spec(False).result
        assert [
            (r.start_s, r.sub_index, r.model_code, r.segment_index)
            for r in on.records
        ] != [
            (r.start_s, r.sub_index, r.model_code, r.segment_index)
            for r in off.records
        ]

    def test_preemption_never_splits_a_running_segment(self):
        # Records on one engine never overlap: preemption only happens
        # at segment boundaries, so occupancy intervals stay disjoint.
        result = self.run_spec(True).result
        by_engine: dict[int, list] = {}
        for record in result.records:
            by_engine.setdefault(record.sub_index, []).append(record)
        for records in by_engine.values():
            records.sort(key=lambda r: r.start_s)
            for a, b in zip(records, records[1:]):
                assert a.end_s <= b.start_s + 1e-12

    def test_preemption_is_deterministic(self):
        a = self.run_spec(True).result
        b = self.run_spec(True).result
        assert [
            (r.start_s, r.sub_index, r.model_code) for r in a.records
        ] == [
            (r.start_s, r.sub_index, r.model_code) for r in b.records
        ]

    def test_non_hook_scheduler_rejected(self):
        with pytest.raises(ValueError, match="should_preempt"):
            RunSpec(
                scenario="vr_gaming", scheduler="latency_greedy",
                granularity="segment", preemptive=True,
            )

    def test_preemptive_requires_segment_granularity(self):
        # Whole-model dispatch has no preemption points; accepting the
        # flag there would be a silent no-op.
        with pytest.raises(ValueError, match="segment boundaries"):
            RunSpec(
                scenario="vr_gaming", scheduler="edf", preemptive=True,
            )
        with pytest.raises(ValueError, match="segment boundaries"):
            RunSpec(suite=True, scheduler="edf", preemptive=True)


class TestValidation:
    def test_zero_duration_rejected(self, vr, system):
        with pytest.raises(ValueError, match="duration_s must be > 0"):
            MultiScenarioSimulator(
                sessions=[SessionSpec(0, vr)],
                system=system,
                scheduler=make_scheduler("latency_greedy"),
                duration_s=0.0,
            )

    def test_arrival_past_duration_rejected(self, vr, system):
        with pytest.raises(ValueError, match="arrives at"):
            MultiScenarioSimulator(
                sessions=[SessionSpec(0, vr, arrival_s=1.0)],
                system=system,
                scheduler=make_scheduler("latency_greedy"),
                duration_s=0.5,
            )

    def test_departure_before_arrival_rejected(self, vr):
        with pytest.raises(ValueError, match="departs"):
            SessionSpec(0, vr, arrival_s=0.5, departure_s=0.25)

    def test_unordered_phases_rejected(self, vr):
        other = get_scenario("ar_gaming")
        with pytest.raises(ValueError, match="strictly increasing"):
            SessionSpec(0, vr, phases=(
                SessionPhase(0.4, other), SessionPhase(0.2, other),
            ))

    def test_phase_after_departure_rejected(self, vr):
        other = get_scenario("ar_gaming")
        with pytest.raises(ValueError, match="departure"):
            SessionSpec(
                0, vr, departure_s=0.3,
                phases=(SessionPhase(0.4, other),),
            )

    def test_mismatched_windows_rejected(self, vr, system):
        with pytest.raises(ValueError, match="lifetime windows"):
            MultiScenarioSimulator.replicate(
                vr, system, make_scheduler("latency_greedy"), 4,
                windows=churn_windows(2, DURATION_S, 0.2),
                duration_s=DURATION_S,
            )

    def test_spec_churn_bounds(self):
        with pytest.raises(ValueError, match="churn"):
            RunSpec(scenario="vr_gaming", churn=0.6)
        with pytest.raises(ValueError, match="churn"):
            RunSpec(scenario="vr_gaming", churn=-0.1)

    def test_churn_spec_round_trips(self):
        spec = RunSpec(
            scenario="vr_gaming", churn=0.25, scheduler="edf",
            granularity="segment", preemptive=True,
        )
        assert RunSpec.from_json(spec.to_json()) == spec
        assert spec.mode == "sessions"
        assert "churn=0.25" in spec.describe()
        assert "preemptive" in spec.describe()


class TestBusyTimeClipping:
    """Busy time is clipped to the measurement window at accounting time.

    Regression: busy time used to be charged in full at ``begin()``, so
    a departing session's drain tail counted against its (shorter)
    active window and window-normalised utilization exceeded 100% —
    only a display-time clamp hid it.
    """

    def test_churned_session_utilization_never_exceeds_one(self, system):
        # Saturated ar_gaming on a small system, departing mid-run: the
        # exact configuration that used to report ~115% utilization.
        result = MultiScenarioSimulator(
            sessions=[SessionSpec(
                0, get_scenario("ar_gaming"), seed=0,
                departure_s=DURATION_S / 2,
            )],
            system=build_accelerator("J", 4096),
            scheduler=make_scheduler("latency_greedy"),
            duration_s=DURATION_S,
        ).run()
        session = result.sessions[0]
        # The drain tail is real (visible in the records) ...
        assert max(r.end_s for r in session.records) > DURATION_S / 2
        # ... but unclipped spans would still overcount the window:
        span = {}
        for record in session.records:
            span[record.sub_index] = (
                span.get(record.sub_index, 0.0) + record.duration_s
            )
        assert max(
            span[i] / session.window_s for i in span
        ) > 1.0
        # ... while accounting-time clipping keeps every reported
        # utilization a true occupancy share.
        for i in range(result.system.num_subs):
            assert session.utilization(i) <= 1.0 + 1e-9
            assert result.system_utilization(i) <= 1.0 + 1e-9

    def test_system_busy_never_exceeds_streamed_duration(self, vr):
        # Overloaded static run: in-flight work drains past duration_s,
        # but engine busy time clips to the horizon.
        result = MultiScenarioSimulator.replicate(
            vr, build_accelerator("J", 4096),
            make_scheduler("latency_greedy"), 4,
            duration_s=DURATION_S,
        ).run()
        for i in range(result.system.num_subs):
            assert result.busy_time_s[i] <= DURATION_S + 1e-9
        assert result.mean_system_utilization() <= 1.0 + 1e-9

    def test_session_busy_sums_match_system_busy_under_churn(self, vr):
        result = MultiScenarioSimulator.replicate(
            vr, build_accelerator("J", 8192),
            make_scheduler("latency_greedy"), 4,
            duration_s=DURATION_S,
            windows=churn_windows(4, DURATION_S, 0.4, 0),
        ).run()
        for i in range(result.system.num_subs):
            contributed = sum(
                s.busy_time_s[i] for s in result.sessions
            )
            # Sessions clip to their own (earlier-ending) windows, so
            # the sum can only fall short of the system-level figure —
            # never exceed it.
            assert contributed <= result.busy_time_s[i] + 1e-9
