"""Tests for failure injection (sensor frame loss) and the RM scheduler."""

from __future__ import annotations

import pytest

from repro.core import Harness, HarnessConfig
from repro.costmodel import CostTable
from repro.hardware import build_accelerator
from repro.runtime import RateMonotonicScheduler, Simulator, make_scheduler
from repro.workload import InferenceRequest, LoadGenerator, get_scenario


class TestLoadGenFrameLoss:
    def test_zero_loss_is_default(self):
        gen = LoadGenerator(get_scenario("vr_gaming"), 1.0)
        assert not any(gen.frame_lost("HT", f) for f in range(100))

    def test_loss_rate_approximates_probability(self):
        gen = LoadGenerator(
            get_scenario("vr_gaming"), 1.0, seed=0,
            frame_loss_probability=0.3,
        )
        losses = sum(gen.frame_lost("ES", f) for f in range(3000))
        assert 0.25 < losses / 3000 < 0.35

    def test_lost_frames_removed_from_requests(self):
        scenario = get_scenario("vr_gaming")
        clean = LoadGenerator(scenario, 1.0, seed=0).root_requests()
        lossy = LoadGenerator(
            scenario, 1.0, seed=0, frame_loss_probability=0.5
        ).root_requests()
        assert len(lossy) < len(clean)

    def test_deterministic_per_seed(self):
        scenario = get_scenario("vr_gaming")
        a = LoadGenerator(scenario, 1.0, seed=3,
                          frame_loss_probability=0.4).root_requests()
        b = LoadGenerator(scenario, 1.0, seed=3,
                          frame_loss_probability=0.4).root_requests()
        assert [r.model_frame for r in a] == [r.model_frame for r in b]

    def test_rejects_invalid_probability(self):
        with pytest.raises(ValueError, match="frame_loss"):
            LoadGenerator(get_scenario("vr_gaming"), 1.0,
                          frame_loss_probability=1.0)


class TestSimulatorUnderFrameLoss:
    def run(self, loss: float, cost_table):
        return Simulator(
            scenario=get_scenario("vr_gaming"),
            system=build_accelerator("A", 8192),
            scheduler=make_scheduler("latency_greedy"),
            duration_s=1.0,
            costs=cost_table,
            frame_loss_probability=loss,
        ).run()

    def test_qoe_denominator_counts_lost_frames(self, cost_table):
        result = self.run(0.3, cost_table)
        # Streamed counts stay nominal (45 HT + 60 ES at 1 s) even though
        # fewer requests arrived.
        assert result.num_frames("HT") == 45
        assert result.num_frames("ES") == 60
        arrived = [r for r in result.requests if r.model_code == "ES"]
        assert len(arrived) < 60

    def test_loss_degrades_qoe_score(self, cost_table):
        from repro.core import score_simulation

        clean = score_simulation(self.run(0.0, cost_table))
        lossy = score_simulation(self.run(0.4, cost_table))
        assert lossy.qoe < clean.qoe
        assert lossy.overall < clean.overall

    def test_harness_config_plumbing(self, cost_table):
        harness = Harness(
            config=HarnessConfig(frame_loss_probability=0.4),
            costs=cost_table,
        )
        report = harness.run_scenario(
            "vr_gaming", build_accelerator("A", 8192)
        )
        assert report.score.qoe < 0.9

    def test_config_validates_probability(self):
        with pytest.raises(ValueError, match="frame_loss"):
            HarnessConfig(frame_loss_probability=-0.1)


class TestRateMonotonicScheduler:
    def req(self, code, period, t=0.0):
        return InferenceRequest(code, 0, t, t + period)

    def test_prefers_shortest_period(self):
        s = RateMonotonicScheduler()
        system = build_accelerator("J", 4096)
        slow = self.req("PD", 1 / 30)
        fast = self.req("ES", 1 / 60)
        choice = s.pick(0.0, [slow, fast], [0, 1], system, CostTable())
        assert choice[0] is fast

    def test_explicit_periods_override(self):
        s = RateMonotonicScheduler(periods={"PD": 0.001, "ES": 1.0})
        system = build_accelerator("J", 4096)
        pd = self.req("PD", 1 / 30)
        es = self.req("ES", 1 / 60)
        choice = s.pick(0.0, [pd, es], [0, 1], system, CostTable())
        assert choice[0] is pd

    def test_end_to_end_run(self, cost_table):
        harness = Harness(
            config=HarnessConfig(scheduler="rate_monotonic"),
            costs=cost_table,
        )
        report = harness.run_scenario(
            "ar_gaming", build_accelerator("J", 8192)
        )
        assert 0.0 <= report.overall <= 1.0

    def test_rm_protects_high_rate_models_under_load(self, cost_table):
        # On the saturated 4K system, RM must keep the 45 FPS HT model at
        # least as healthy as the 30 FPS PD model.
        harness = Harness(
            config=HarnessConfig(scheduler="rate_monotonic"),
            costs=cost_table,
        )
        score = harness.run_scenario(
            "ar_gaming", build_accelerator("J", 4096)
        ).score
        assert score.model("HT").qoe >= score.model("PD").qoe - 0.05
