"""Golden-schedule equivalence: the incremental dispatch path is
bit-identical to the recompute-everything formulation it replaced.

The checksums below were generated from the pre-refactor event loop
(which rebuilt the waiting list, re-sorted the resumable list and
re-scanned engine idleness on every scheduler pass) over every
registered scheduler x both granularities x 1/4/16 sessions.  The
maintained-state dispatch path must reproduce every schedule exactly:
each checksum hashes the full ``(start_s, sub_index, task_code)``
execution log, so any reordering, timing drift, or dropped/duplicated
dispatch changes the digest.

If a deliberate scheduling-semantics change ever invalidates these,
regenerate with ``checksum_of(run_case(...))`` and say so loudly in the
commit message — this file is the contract that perf work does not move
schedules.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.hardware import build_accelerator
from repro.runtime import MultiScenarioSimulator, make_scheduler
from repro.runtime.segmentation import dispatch_segment_code
from repro.workload import churn_windows, get_scenario

#: One workload fixed forever: vr_gaming on accelerator J at 8192 PEs,
#: 0.25 streamed seconds, base seed 0, default 2-way splits.
SCENARIO = "vr_gaming"
ACCELERATOR = "J"
PES = 8192
DURATION_S = 0.25
BASE_SEED = 0

#: (scheduler, granularity, sessions) -> (record count, sha256 digest),
#: generated from the pre-refactor dispatch loop.
GOLDEN: dict[tuple[str, str, int], tuple[int, str]] = {
    ("latency_greedy", "model", 1):
        (42, "50a395771a3e90f3c3b255b27adde908db1b05128ec182d81a0d5b3df2c68381"),
    ("latency_greedy", "model", 4):
        (94, "9eb2c3d3ab1bfef2c54812278945f8a81e6c31249d1843a993087e5fcae019bb"),
    ("latency_greedy", "model", 16):
        (129, "7aeeb97cd83488dba582d207ec91c3c25ccde87724470d6e8973a9555b3ff33c"),
    ("latency_greedy", "segment", 1):
        (84, "adc70ad2afa83af9c3e4104cb8e8f8eaa8c20879ca057b36727af10384ea91a4"),
    ("latency_greedy", "segment", 4):
        (188, "8f960f35ebae561e6e28d46ee042f0a33e1825bc89344bb73f3432e8ca4e29fc"),
    ("latency_greedy", "segment", 16):
        (258, "9dd5ca29e0ceede2ad2f235a81501ae025bebf27f3f98fa93cdc92374499d4dc"),
    ("round_robin", "model", 1):
        (42, "d27f23b3db03e798d2888b010669a81ab6fce502b8eb5bb84f7d045d52ba7bd5"),
    ("round_robin", "model", 4):
        (94, "9eb2c3d3ab1bfef2c54812278945f8a81e6c31249d1843a993087e5fcae019bb"),
    ("round_robin", "model", 16):
        (129, "7aeeb97cd83488dba582d207ec91c3c25ccde87724470d6e8973a9555b3ff33c"),
    ("round_robin", "segment", 1):
        (84, "77efeaed135fecb9f00df37b7f11d1fbb0fe32fed7cb3bc5e3787aee90a5a67a"),
    ("round_robin", "segment", 4):
        (188, "8f960f35ebae561e6e28d46ee042f0a33e1825bc89344bb73f3432e8ca4e29fc"),
    ("round_robin", "segment", 16):
        (258, "9dd5ca29e0ceede2ad2f235a81501ae025bebf27f3f98fa93cdc92374499d4dc"),
    ("edf", "model", 1):
        (42, "50a395771a3e90f3c3b255b27adde908db1b05128ec182d81a0d5b3df2c68381"),
    ("edf", "model", 4):
        (97, "fe382b9338fc7639ec3efd4854152572e992193b2f091fd3ed579dc7e7c5f350"),
    ("edf", "model", 16):
        (139, "b06d7dc2ba994b5dfa9789486284131925194c0e4df047ef4fee700615579813"),
    ("edf", "segment", 1):
        (84, "adc70ad2afa83af9c3e4104cb8e8f8eaa8c20879ca057b36727af10384ea91a4"),
    ("edf", "segment", 4):
        (194, "0a672de99e6bb8e8828682e1e38d943201c40f869de34ae16b0c114037d98e60"),
    ("edf", "segment", 16):
        (278, "2ebdb33cef3a57084262b3748f431f0fdf33c0441fbcad4f597e030a82d76857"),
    ("rate_monotonic", "model", 1):
        (42, "50a395771a3e90f3c3b255b27adde908db1b05128ec182d81a0d5b3df2c68381"),
    ("rate_monotonic", "model", 4):
        (114, "5077a526d740ce000f9657955f680ad2520783367d9dc6f700424d2c6db8ea22"),
    ("rate_monotonic", "model", 16):
        (148, "2d35dc63efd6204b20d40091f2ac6a7d5647e63006d9c83e3e59e4a5817ab71f"),
    ("rate_monotonic", "segment", 1):
        (84, "adc70ad2afa83af9c3e4104cb8e8f8eaa8c20879ca057b36727af10384ea91a4"),
    ("rate_monotonic", "segment", 4):
        (228, "2f5cfe0aa7439703ebaafb8dbf6aace2e132947197371f5fef392af95480a3aa"),
    ("rate_monotonic", "segment", 16):
        (296, "11696056b7c19cd34193a213ab483976465433a8d86350c26c30ff0029173f38"),
}


#: (scheduler, granularity, sessions, churn, preemptive, dvfs) ->
#: (record count, sha256 digest).  Same contract as ``GOLDEN`` but over
#: the *dynamic* machinery later PRs added on top of the static cells:
#: session churn (mid-run JOIN/LEAVE), deadline-aware segment preemption,
#: and the slack/race-to-idle DVFS governors.  Generated from the
#: pre-batch-drain event loop so the batched/vectorised dispatch path is
#: pinned against every scheduling feature, not just the static sweep.
GOLDEN_DYNAMIC: dict[
    tuple[str, str, int, float, bool, str], tuple[int, str]
] = {
    ("latency_greedy", "model", 16, 0.25, False, "static"):
        (54, "492aafeeeb32db44475a12c765167d311e298d9d10bea46927039beeca680e5b"),
    ("latency_greedy", "segment", 16, 0.25, False, "static"):
        (108, "1e8ec71575f809f04467cf25525896d49bed616d0e14db1c2a664d193fb14aa4"),
    ("round_robin", "model", 16, 0.25, False, "static"):
        (54, "492aafeeeb32db44475a12c765167d311e298d9d10bea46927039beeca680e5b"),
    ("edf", "segment", 16, 0.0, True, "static"):
        (278, "2ebdb33cef3a57084262b3748f431f0fdf33c0441fbcad4f597e030a82d76857"),
    ("edf", "segment", 16, 0.25, True, "static"):
        (169, "3c93a01a74171c2f3d8437ba75e570944607cde26d4b437dc412e71b11b0b55b"),
    ("rate_monotonic", "segment", 4, 0.25, True, "static"):
        (149, "4b44dd22698e00ae518c4e5018525fb3e26bd8f341d862772c1b0243849dff02"),
    ("latency_greedy", "model", 16, 0.0, False, "slack"):
        (127, "09bc715155ac86198ff6f78cde7ea378bca50ea3939f19c22a99b69ca055499b"),
    ("latency_greedy", "segment", 16, 0.0, False, "slack"):
        (254, "2ff969a9be60447c845a44c4f8a83be81964e995aa4af3d7bb27513ef3380799"),
    ("edf", "model", 4, 0.0, False, "race_to_idle"):
        (122, "20d914b7866277e521032bd96a78380ab96c9427387397d16499a33973edcf43"),
    ("edf", "segment", 16, 0.25, True, "slack"):
        (185, "0044a3f710e30b66be4b1ac9d1ee5a33c03154bee2c0079c3629297711d53302"),
}


#: (scheduler, granularity, sessions, fault profile) ->
#: (record count, sha256 digest).  Same contract again, over the
#: fault-injection machinery: seeded engine failures, recovery, the
#: in-flight kill/requeue path and thermal DVFS clamps.  Fault plans are
#: deterministic in (profile, seed), so these digests pin the *entire*
#: resilience path — which dispatch gets killed, when the retry lands,
#: which surviving engine absorbs the requeued frame, and how thermal
#: caps reshape every subsequent dispatch.
GOLDEN_FAULTS: dict[tuple[str, str, int, str], tuple[int, str]] = {
    ("latency_greedy", "model", 4, "single"):
        (71, "cc01de145e2698654f92fc7bc442fc6dfad44ef549cc157af5e043dc588e457c"),
    ("latency_greedy", "segment", 16, "single"):
        (213, "40cff6b4bfbad7c5cc82410c91af2ed281a2b4e9cd53d34e504bb15786065d53"),
    ("edf", "segment", 4, "flaky"):
        (179, "d92b8cccf2d5684f1c8bb75fc23aeaa1b137f7452c08b70ca40bb1581fb56a08"),
    ("latency_greedy", "model", 4, "thermal"):
        (86, "7ff37d20c1f09ead270911b82d293505a041de9b5b90c354aeef87c3788607e9"),
    ("rate_monotonic", "model", 16, "flaky"):
        (137, "f6481f4aebbc2f2638f22f1b53df493e68dc0233cdcb6f217bf5a911c1c59e95"),
}


def run_case(
    scheduler: str,
    granularity: str,
    sessions: int,
    churn: float = 0.0,
    preemptive: bool = False,
    dvfs: str = "static",
    faults: str = "none",
):
    kwargs = {"preemptive": True} if preemptive else {}
    windows = (
        churn_windows(sessions, DURATION_S, churn, BASE_SEED)
        if churn
        else None
    )
    return MultiScenarioSimulator.replicate(
        get_scenario(SCENARIO),
        build_accelerator(ACCELERATOR, PES),
        make_scheduler(scheduler, **kwargs),
        sessions,
        base_seed=BASE_SEED,
        duration_s=DURATION_S,
        granularity=granularity,
        windows=windows,
        dvfs_policy=dvfs,
        faults=faults,
        fault_seed=BASE_SEED,
    ).run()


def checksum_of(result) -> tuple[int, str]:
    """(record count, sha256 of the (start_s, sub_index, task_code) log).

    ``start_s`` is rounded to a nanosecond so the digest survives
    last-bit float formatting differences while still flagging any real
    timing change.
    """
    rows = [
        [
            round(r.start_s, 9),
            r.sub_index,
            dispatch_segment_code(r.model_code, r.segment_index,
                                  r.num_segments)
            if r.num_segments > 1
            else r.model_code,
        ]
        for r in result.records
    ]
    blob = json.dumps(rows, separators=(",", ":")).encode()
    return len(rows), hashlib.sha256(blob).hexdigest()


@pytest.mark.parametrize(
    "scheduler,granularity,sessions",
    sorted(GOLDEN),
    ids=lambda v: str(v),
)
def test_schedule_matches_pre_refactor_golden(scheduler, granularity,
                                              sessions):
    result = run_case(scheduler, granularity, sessions)
    assert checksum_of(result) == GOLDEN[(scheduler, granularity, sessions)]


@pytest.mark.parametrize(
    "scheduler,granularity,sessions,churn,preemptive,dvfs",
    sorted(GOLDEN_DYNAMIC),
    ids=lambda v: str(v),
)
def test_dynamic_schedule_matches_golden(scheduler, granularity, sessions,
                                         churn, preemptive, dvfs):
    result = run_case(scheduler, granularity, sessions, churn, preemptive,
                      dvfs)
    key = (scheduler, granularity, sessions, churn, preemptive, dvfs)
    assert checksum_of(result) == GOLDEN_DYNAMIC[key]


@pytest.mark.parametrize(
    "scheduler,granularity,sessions,faults",
    sorted(GOLDEN_FAULTS),
    ids=lambda v: str(v),
)
def test_fault_schedule_matches_golden(scheduler, granularity, sessions,
                                       faults):
    result = run_case(scheduler, granularity, sessions, faults=faults)
    key = (scheduler, granularity, sessions, faults)
    assert checksum_of(result) == GOLDEN_FAULTS[key]


def test_faults_none_is_bit_identical_to_historical_path():
    """``faults="none"`` must not perturb a single dispatch: the run is
    byte-for-byte the pre-fault-injection schedule."""
    plain = run_case("latency_greedy", "model", 4)
    gated = run_case("latency_greedy", "model", 4, faults="none")
    assert checksum_of(gated) == checksum_of(plain)
    assert checksum_of(gated) == GOLDEN[("latency_greedy", "model", 4)]


def test_golden_covers_every_registered_scheduler():
    """New policies must be added to the golden table (or this reminds you)."""
    from repro.runtime import SCHEDULERS

    covered = {scheduler for scheduler, _, _ in GOLDEN}
    assert covered == set(SCHEDULERS), (
        "schedulers missing from the golden table: "
        f"{sorted(set(SCHEDULERS) - covered)}"
    )


def test_checksum_is_schedule_sensitive():
    """Sanity: the digest actually distinguishes different schedules."""
    a = checksum_of(run_case("latency_greedy", "model", 4))
    b = checksum_of(run_case("edf", "model", 4))
    assert a != b


# -- plan-path equivalence ----------------------------------------------------
#
# PR 9 split execution into compile_plan(spec) -> execute_plan(plan).
# Every golden cell is re-asserted through that seam: the spec compiles
# to a DispatchPlan, the plan round-trips through JSON, and the executor
# replays it to the exact pre-plan schedule.  A 1-tuple scenario forces
# sessions=1 cells into the multi-tenant engine run_case exercises
# (a bare string would route to the single-tenant simulator).


def run_case_via_plan(
    scheduler: str,
    granularity: str,
    sessions: int,
    churn: float = 0.0,
    preemptive: bool = False,
    dvfs: str = "static",
    faults: str = "none",
):
    from repro.api import DispatchPlan, RunSpec, compile_plan, execute_plan

    spec = RunSpec(
        scenario=(SCENARIO,) * sessions,
        accelerator=ACCELERATOR,
        pes=PES,
        scheduler=scheduler,
        granularity=granularity,
        duration_s=DURATION_S,
        seed=BASE_SEED,
        churn=churn,
        preemptive=preemptive,
        dvfs_policy=dvfs,
        faults=faults,
    )
    plan = DispatchPlan.from_json(compile_plan(spec).to_json())
    return execute_plan(plan).result


@pytest.mark.parametrize(
    "scheduler,granularity,sessions",
    sorted(GOLDEN),
    ids=lambda v: str(v),
)
def test_plan_path_matches_golden(scheduler, granularity, sessions):
    result = run_case_via_plan(scheduler, granularity, sessions)
    assert checksum_of(result) == GOLDEN[(scheduler, granularity, sessions)]


@pytest.mark.parametrize(
    "scheduler,granularity,sessions,churn,preemptive,dvfs",
    sorted(GOLDEN_DYNAMIC),
    ids=lambda v: str(v),
)
def test_plan_path_matches_dynamic_golden(scheduler, granularity, sessions,
                                          churn, preemptive, dvfs):
    result = run_case_via_plan(scheduler, granularity, sessions, churn,
                               preemptive, dvfs)
    key = (scheduler, granularity, sessions, churn, preemptive, dvfs)
    assert checksum_of(result) == GOLDEN_DYNAMIC[key]


@pytest.mark.parametrize(
    "scheduler,granularity,sessions,faults",
    sorted(GOLDEN_FAULTS),
    ids=lambda v: str(v),
)
def test_plan_path_matches_fault_golden(scheduler, granularity, sessions,
                                        faults):
    result = run_case_via_plan(scheduler, granularity, sessions,
                               faults=faults)
    key = (scheduler, granularity, sessions, faults)
    assert checksum_of(result) == GOLDEN_FAULTS[key]
