"""Tests for the pluggable schedulers."""

from __future__ import annotations

import pytest

from repro.costmodel import CostTable
from repro.hardware import build_accelerator
from repro.runtime import (
    SCHEDULERS,
    EarliestDeadlineScheduler,
    LatencyGreedyScheduler,
    RoundRobinScheduler,
    make_scheduler,
)
from repro.workload import InferenceRequest


def req(code="HT", frame=0, t=0.0, deadline=0.033):
    return InferenceRequest(code, frame, t, deadline)


@pytest.fixture(scope="module")
def hda_j():
    return build_accelerator("J", 4096)  # WS@2048 + OS@2048


@pytest.fixture(scope="module")
def table():
    return CostTable()


class TestFactory:
    def test_registry_names(self):
        assert set(SCHEDULERS) == {
            "latency_greedy", "round_robin", "edf", "rate_monotonic",
        }

    def test_make_scheduler(self):
        assert isinstance(make_scheduler("latency_greedy"),
                          LatencyGreedyScheduler)
        assert isinstance(make_scheduler("round_robin"), RoundRobinScheduler)
        assert isinstance(make_scheduler("edf"), EarliestDeadlineScheduler)

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown scheduler"):
            make_scheduler("magic")


class TestLatencyGreedy:
    def test_returns_none_when_nothing_waiting(self, hda_j, table):
        s = LatencyGreedyScheduler()
        assert s.pick(0.0, [], [0, 1], hda_j, table) is None

    def test_returns_none_when_no_idle_engine(self, hda_j, table):
        s = LatencyGreedyScheduler()
        assert s.pick(0.0, [req()], [], hda_j, table) is None

    def test_picks_oldest_request(self, hda_j, table):
        s = LatencyGreedyScheduler()
        older, newer = req(frame=0, t=0.0), req(frame=1, t=0.1)
        choice = s.pick(0.2, [older, newer], [0, 1], hda_j, table)
        assert choice[0] is older

    def test_picks_fastest_engine_for_model(self, hda_j, table):
        # SR (transformer) strongly prefers the WS engine (index 0).
        s = LatencyGreedyScheduler()
        _, engine = s.pick(0.0, [req("SR")], [0, 1], hda_j, table)
        assert engine == 0
        # DE (depthwise-heavy) prefers the OS engine (index 1).
        _, engine = s.pick(0.0, [req("DE")], [0, 1], hda_j, table)
        assert engine == 1

    def test_respects_idle_restriction(self, hda_j, table):
        s = LatencyGreedyScheduler()
        _, engine = s.pick(0.0, [req("SR")], [1], hda_j, table)
        assert engine == 1  # fastest engine is busy; take what's idle


class TestRoundRobin:
    def test_cycles_engines(self, table):
        quad = build_accelerator("H", 4096)
        s = RoundRobinScheduler()
        engines = []
        for frame in range(4):
            _, engine = s.pick(0.0, [req(frame=frame)], [0, 1, 2, 3],
                               quad, table)
            engines.append(engine)
        assert engines == [0, 1, 2, 3]

    def test_skips_busy_engines(self, table):
        quad = build_accelerator("H", 4096)
        s = RoundRobinScheduler()
        _, engine = s.pick(0.0, [req()], [2, 3], quad, table)
        assert engine == 2

    def test_reset(self, table):
        quad = build_accelerator("H", 4096)
        s = RoundRobinScheduler()
        s.pick(0.0, [req()], [0, 1, 2, 3], quad, table)
        s.reset()
        _, engine = s.pick(0.0, [req(frame=1)], [0, 1, 2, 3], quad, table)
        assert engine == 0

    def test_none_when_empty(self, table):
        quad = build_accelerator("H", 4096)
        assert RoundRobinScheduler().pick(0.0, [], [0], quad, table) is None


class TestEDF:
    def test_picks_most_urgent(self, hda_j, table):
        s = EarliestDeadlineScheduler()
        relaxed = req("HT", t=0.0, deadline=0.5)
        urgent = req("ES", t=0.1, deadline=0.2)
        choice = s.pick(0.2, [relaxed, urgent], [0, 1], hda_j, table)
        assert choice[0] is urgent

    def test_ties_break_on_request_time(self, hda_j, table):
        s = EarliestDeadlineScheduler()
        a = req("HT", t=0.05, deadline=0.2)
        b = req("ES", t=0.01, deadline=0.2)
        choice = s.pick(0.1, [a, b], [0], hda_j, table)
        assert choice[0] is b
