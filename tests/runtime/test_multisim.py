"""Tests for the multi-tenant runtime engine."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core import score_sessions
from repro.costmodel import CachedCostTable, CostTable
from repro.hardware import build_accelerator
from repro.runtime import (
    LatencyGreedyScheduler,
    MultiScenarioSimulator,
    SessionSpec,
    Simulator,
)
from repro.workload import get_scenario


def multi(scenario="vr_gaming", acc="J", pes=8192, sessions=4, seed=0,
          duration=1.0, **kwargs):
    return MultiScenarioSimulator.replicate(
        get_scenario(scenario),
        build_accelerator(acc, pes),
        LatencyGreedyScheduler(),
        sessions,
        base_seed=seed,
        duration_s=duration,
        **kwargs,
    ).run()


def signature(result):
    return [
        (s.session_id, r.model_code, r.model_frame, r.end_time_s, r.dropped)
        for s in result.sessions
        for r in s.requests
    ]


@pytest.fixture(scope="module")
def four_sessions():
    return multi()


class TestConstruction:
    def test_needs_a_session(self):
        with pytest.raises(ValueError, match="at least one session"):
            MultiScenarioSimulator(
                sessions=[],
                system=build_accelerator("J", 4096),
                scheduler=LatencyGreedyScheduler(),
            )

    def test_rejects_duplicate_ids(self):
        scenario = get_scenario("vr_gaming")
        with pytest.raises(ValueError, match="duplicate session ids"):
            MultiScenarioSimulator(
                sessions=[SessionSpec(0, scenario), SessionSpec(0, scenario)],
                system=build_accelerator("J", 4096),
                scheduler=LatencyGreedyScheduler(),
            )

    def test_rejects_unknown_granularity(self):
        with pytest.raises(ValueError, match="granularity"):
            MultiScenarioSimulator(
                sessions=[SessionSpec(0, get_scenario("vr_gaming"))],
                system=build_accelerator("J", 4096),
                scheduler=LatencyGreedyScheduler(),
                granularity="layer",
            )


class TestMultiplexing:
    def test_per_session_results_and_qoe(self, four_sessions):
        assert four_sessions.num_sessions == 4
        scores = score_sessions(four_sessions)
        assert len(scores) == 4
        for score in scores:
            assert 0.0 <= score.overall <= 1.0
            assert 0.0 <= score.qoe <= 1.0

    def test_sessions_have_distinct_jitter(self, four_sessions):
        times = [
            tuple(r.request_time_s for r in s.requests)
            for s in four_sessions.sessions
        ]
        assert len(set(times)) == 4  # distinct seeds -> distinct streams

    def test_system_busy_is_sum_of_session_busy(self, four_sessions):
        for i in range(four_sessions.system.num_subs):
            contributed = sum(
                s.busy_time_s[i] for s in four_sessions.sessions
            )
            assert four_sessions.busy_time_s[i] == pytest.approx(contributed)

    def test_shared_system_shows_contention(self):
        alone = multi(sessions=1)
        crowded = multi(sessions=4)
        drop = lambda res: sum(  # noqa: E731
            len(s.dropped()) for s in res.sessions
        ) / max(1, sum(len(s.requests) for s in res.sessions))
        assert drop(crowded) >= drop(alone)
        assert crowded.mean_system_utilization() >= (
            alone.mean_system_utilization()
        )

    def test_records_cover_all_sessions(self, four_sessions):
        sessions_seen = {r.session_id for r in four_sessions.records}
        assert sessions_seen == {0, 1, 2, 3}

    def test_no_engine_overlap_across_sessions(self, four_sessions):
        by_engine: dict[int, list] = {}
        for record in four_sessions.records:
            by_engine.setdefault(record.sub_index, []).append(record)
        for records in by_engine.values():
            records.sort(key=lambda r: r.start_s)
            for a, b in zip(records, records[1:]):
                assert a.end_s <= b.start_s + 1e-12

    def test_mixed_scenarios(self):
        specs = [
            SessionSpec(0, get_scenario("vr_gaming"), seed=0),
            SessionSpec(1, get_scenario("ar_assistant"), seed=1),
        ]
        result = MultiScenarioSimulator(
            sessions=specs,
            system=build_accelerator("J", 8192),
            scheduler=LatencyGreedyScheduler(),
        ).run()
        assert result.session(0).scenario.name == "vr_gaming"
        assert result.session(1).scenario.name == "ar_assistant"
        assert all(len(s.completed()) > 0 for s in result.sessions)

    def test_session_lookup_by_id(self, four_sessions):
        for sid in range(4):
            assert four_sessions.session(sid).session_id == sid

    def test_session_lookup_unknown_id_raises(self, four_sessions):
        with pytest.raises(KeyError, match="no session 99"):
            four_sessions.session(99)
        with pytest.raises(KeyError, match="no session -1"):
            four_sessions.session(-1)

    def test_session_index_tracks_mutation(self, four_sessions):
        # The id index is rebuilt if the sessions list changes size
        # (results are plain dataclasses; callers may extend them).
        import copy

        result = copy.copy(four_sessions)
        result.sessions = list(result.sessions)
        extra = copy.copy(result.sessions[0])
        extra.session_id = 42
        result.session(0)  # build the index
        result.sessions.append(extra)
        assert result.session(42) is extra

    def test_session_index_not_stale_after_replace(self, four_sessions):
        # dataclasses.replace with a same-size sessions list must not
        # inherit the original's id index.
        import copy
        import dataclasses

        four_sessions.session(0)  # ensure the index is built
        renumbered = []
        for offset, session in enumerate(four_sessions.sessions):
            clone = copy.copy(session)
            clone.session_id = 100 + offset
            renumbered.append(clone)
        swapped = dataclasses.replace(four_sessions, sessions=renumbered)
        assert swapped.session(100) is renumbered[0]
        with pytest.raises(KeyError, match="no session 0"):
            swapped.session(0)
        # The original is untouched.
        assert four_sessions.session(0).session_id == 0


class TestDeterminism:
    def test_same_seeds_same_outcome(self):
        assert signature(multi(seed=3)) == signature(multi(seed=3))

    def test_different_seed_differs(self):
        assert signature(multi(seed=0)) != signature(multi(seed=100))

    def test_single_session_matches_legacy_simulator(self):
        table = CostTable()
        legacy = Simulator(
            scenario=get_scenario("vr_gaming"),
            system=build_accelerator("J", 8192),
            scheduler=LatencyGreedyScheduler(),
            costs=table,
            seed=5,
        ).run()
        result = multi(sessions=1, seed=5)
        [session] = result.sessions
        legacy_sig = [
            (r.model_code, r.model_frame, r.end_time_s, r.dropped)
            for r in legacy.requests
        ]
        multi_sig = [
            (r.model_code, r.model_frame, r.end_time_s, r.dropped)
            for r in session.requests
        ]
        assert legacy_sig == multi_sig


class TestSegmentGranularity:
    def test_single_engine_counts_match_model_granularity(self):
        by_granularity = {}
        for granularity in ("model", "segment"):
            result = multi(
                scenario="ar_gaming",
                acc="A",
                pes=8192,
                sessions=1,
                granularity=granularity,
            )
            by_granularity[granularity] = Counter(
                r.model_code for r in result.sessions[0].completed()
            )
        assert by_granularity["model"] == by_granularity["segment"]

    def test_segment_records_emitted(self):
        result = multi(granularity="segment", sessions=2)
        segmented = [r for r in result.records if r.num_segments > 1]
        assert segmented, "expected at least one segment-level execution"
        # Segment indices within a (session, model, frame) group chain up.
        groups: dict[tuple, list[int]] = {}
        for record in segmented:
            key = (record.session_id, record.model_code, record.model_frame)
            groups.setdefault(key, []).append(record.segment_index)
        for indices in groups.values():
            assert sorted(indices) == list(range(len(indices)))

    def test_segment_requests_span_their_records(self):
        result = multi(granularity="segment", sessions=1)
        [session] = result.sessions
        spans: dict[tuple, list] = {}
        for record in session.records:
            spans.setdefault(
                (record.model_code, record.model_frame), []
            ).append(record)
        for request in session.completed():
            records = spans[(request.model_code, request.model_frame)]
            assert min(r.start_s for r in records) == pytest.approx(
                request.start_time_s
            )
            assert max(r.end_s for r in records) == pytest.approx(
                request.end_time_s
            )

    def test_simulator_facade_plumbs_split_count(self):
        result = Simulator(
            scenario=get_scenario("ar_gaming"),
            system=build_accelerator("J", 8192),
            scheduler=LatencyGreedyScheduler(),
            costs=CachedCostTable(),
            granularity="segment",
            segments_per_model=3,
        ).run()
        assert max(r.num_segments for r in result.records) == 3

    def test_table_reuse_across_split_counts_stays_correct(self):
        # Segment codes embed the split count, so a table warmed by a
        # 2-way run never prices a 3-way run with stale segment graphs.
        def signature_of(result):
            return [
                (r.model_code, r.model_frame, r.end_time_s)
                for r in result.sessions[0].completed()
            ]

        shared = CachedCostTable()
        multi(scenario="ar_gaming", acc="A", sessions=1,
              granularity="segment", costs=shared)
        reused = multi(scenario="ar_gaming", acc="A", sessions=1,
                       granularity="segment", segments_per_model=3,
                       costs=shared)
        fresh = multi(scenario="ar_gaming", acc="A", sessions=1,
                      granularity="segment", segments_per_model=3,
                      costs=CachedCostTable())
        assert signature_of(reused) == signature_of(fresh)

    def test_plain_cost_table_gets_wrapped(self):
        # Segment granularity needs a graph registry; a bare CostTable is
        # wrapped transparently rather than rejected.
        result = multi(granularity="segment", sessions=1,
                       **{"costs": CostTable()})
        assert any(r.num_segments > 1 for r in result.records)


class TestCostCache:
    def test_cache_stats_reported(self, four_sessions):
        stats = four_sessions.cost_stats
        assert stats is not None
        assert stats.lookups > 0
        assert stats.hit_rate > 0.9  # hot path is dominated by hits

    def test_shared_base_table_reused(self):
        base = CostTable()
        multi(sessions=2, **{"costs": CachedCostTable(base=base)})
        cached = CachedCostTable(base=base)
        result = multi(sessions=2, **{"costs": cached})
        # Every analytical answer came from the warm base table.
        assert cached.stats.misses > 0
        assert result.cost_stats is cached.stats
