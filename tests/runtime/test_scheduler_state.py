"""Stateful-scheduler hygiene: shared policy instances must be reusable.

Two of the registered policies carry mutable state — the round-robin
rotor and rate-monotonic's lazily-inferred periods.  Before the
``reset()`` protocol, reusing one policy object across runs leaked the
first run's state into the second, making back-to-back results
order-dependent.  ``MultiScenarioSimulator.run()`` (and therefore the
whole execute funnel, which every front end flows through) now resets
the policy at the start of every run.
"""

from __future__ import annotations

import pytest

from repro.costmodel import CostTable
from repro.hardware import build_accelerator
from repro.runtime import (
    MultiScenarioSimulator,
    RateMonotonicScheduler,
    RoundRobinScheduler,
    SchedulerAdapter,
    SessionSpec,
    Simulator,
    make_scheduler,
)
from repro.workload import InferenceRequest, get_scenario

DURATION_S = 0.25


def req(code="HT", frame=0, t=0.0, deadline=0.033):
    return InferenceRequest(code, frame, t, deadline)


@pytest.fixture(scope="module")
def system():
    return build_accelerator("J", 8192)  # two engines: the rotor matters


def run_once(scheduler, system, sessions=4):
    return MultiScenarioSimulator.replicate(
        get_scenario("vr_gaming"), system, scheduler, sessions,
        duration_s=DURATION_S,
    ).run()


def schedule_of(result):
    return [
        (r.start_s, r.sub_index, r.session_id, r.model_code)
        for r in result.records
    ]


class TestResetProtocol:
    @pytest.mark.parametrize(
        "name", ["latency_greedy", "round_robin", "edf", "rate_monotonic"],
    )
    def test_back_to_back_runs_are_identical(self, name, system):
        """One shared policy instance; the second run must match the first."""
        from repro.core.aggregate import score_sessions

        scheduler = make_scheduler(name)
        first = run_once(scheduler, system)
        second = run_once(scheduler, system)
        assert schedule_of(first) == schedule_of(second)
        assert [
            (s.scenario_name, s.overall, s.rt, s.energy, s.qoe)
            for s in score_sessions(first)
        ] == [
            (s.scenario_name, s.overall, s.rt, s.energy, s.qoe)
            for s in score_sessions(second)
        ]

    def test_shared_rotor_previously_leaked(self, system):
        # The regression this protocol fixes: advance the rotor by hand,
        # as a previous run would have left it, and check run() heals it.
        scheduler = RoundRobinScheduler()
        pristine = schedule_of(run_once(scheduler, system))
        scheduler._next_engine = 1
        assert schedule_of(run_once(scheduler, system)) == pristine

    def test_single_tenant_facade_resets_too(self, system):
        scheduler = RoundRobinScheduler(_next_engine=1)
        result = Simulator(
            scenario=get_scenario("vr_gaming"),
            system=system,
            scheduler=scheduler,
            duration_s=DURATION_S,
        ).run()
        fresh = Simulator(
            scenario=get_scenario("vr_gaming"),
            system=system,
            scheduler=RoundRobinScheduler(),
            duration_s=DURATION_S,
        ).run()
        assert schedule_of(result) == schedule_of(fresh)

    def test_adapter_forwards_reset(self):
        scheduler = RoundRobinScheduler(_next_engine=3)
        SchedulerAdapter(scheduler).reset()
        assert scheduler._next_engine == 0

    def test_memoizing_rate_monotonic_is_run_order_independent(
        self, system
    ):
        scheduler = RateMonotonicScheduler(memoize_periods=True)
        first = schedule_of(run_once(scheduler, system))
        # A different run in between would previously have polluted
        # self.periods for the repeat.
        run_once(scheduler, system, sessions=2)
        assert schedule_of(run_once(scheduler, system)) == first


class TestRateMonotonicMemoization:
    def pick_args(self, system):
        return [0], system, CostTable()

    def test_memoizes_inferred_period_per_model_code(self, system):
        scheduler = RateMonotonicScheduler(memoize_periods=True)
        idle, sys_, costs = self.pick_args(system)
        first = req("HT", 0, t=0.0, deadline=0.020)
        scheduler.pick(0.0, [first], idle, sys_, costs)
        assert scheduler.periods["HT"] == pytest.approx(0.020)
        # A later request of the same model with different slack reuses
        # the memoized period instead of re-inferring.
        later = req("HT", 5, t=0.5, deadline=0.590)
        assert scheduler._period(later) == pytest.approx(0.020)
        assert scheduler.periods["HT"] == pytest.approx(0.020)

    def test_default_reinfers_per_request(self, system):
        # The historical behaviour (pinned by the golden schedules):
        # without opting in, nothing is memoized and each request's own
        # slack decides its priority.
        scheduler = RateMonotonicScheduler()
        idle, sys_, costs = self.pick_args(system)
        scheduler.pick(0.0, [req("HT", 0, t=0.0, deadline=0.020)],
                       idle, sys_, costs)
        assert "HT" not in scheduler.periods
        assert scheduler._period(
            req("HT", 5, t=0.5, deadline=0.590)
        ) == pytest.approx(0.090)

    def test_provided_periods_always_win(self, system):
        scheduler = RateMonotonicScheduler(
            periods={"HT": 1 / 45}, memoize_periods=True
        )
        assert scheduler._period(
            req("HT", 0, t=0.0, deadline=0.5)
        ) == pytest.approx(1 / 45)
        assert scheduler.periods["HT"] == pytest.approx(1 / 45)

    def test_callers_periods_dict_is_never_mutated(self):
        callers = {"HT": 1 / 45}
        scheduler = RateMonotonicScheduler(
            periods=callers, memoize_periods=True
        )
        scheduler._period(req("ES", 0, t=0.0, deadline=0.033))
        assert callers == {"HT": 1 / 45}  # inferred values stay inside
        assert "ES" in scheduler.periods

    def test_reset_clears_inferred_keeps_provided(self):
        scheduler = RateMonotonicScheduler(
            periods={"HT": 1 / 45}, memoize_periods=True
        )
        scheduler._period(req("ES", 0, t=0.0, deadline=0.033))
        assert "ES" in scheduler.periods
        scheduler.reset()
        assert scheduler.periods == {"HT": pytest.approx(1 / 45)}

    def test_floor_guards_degenerate_slack(self):
        scheduler = RateMonotonicScheduler(memoize_periods=True)
        degenerate = req("GE", 0, t=0.5, deadline=0.4)  # negative slack
        assert scheduler._period(degenerate) == pytest.approx(1e-6)


class TestRoundRobinRotor:
    def test_set_probe_preserves_pick_order(self, system):
        # The rotor probe is now set-based; picks must be unchanged
        # (the golden schedules pin the full behaviour — this unit test
        # pins the probe logic in isolation).
        scheduler = RoundRobinScheduler()
        costs = CostTable()
        waiting = [req()]
        assert scheduler.pick(0.0, waiting, [0, 1], system, costs)[1] == 0
        assert scheduler.pick(0.0, waiting, [0, 1], system, costs)[1] == 1
        assert scheduler.pick(0.0, waiting, [0, 1], system, costs)[1] == 0
        # Busy engine 0: the rotor skips to 1 and wraps.
        assert scheduler.pick(0.0, waiting, [1], system, costs)[1] == 1
        assert scheduler.pick(0.0, waiting, [1], system, costs)[1] == 1
        assert scheduler.pick(0.0, waiting, [0], system, costs)[1] == 0


class TestDegenerateResults:
    def test_zero_duration_simulator_rejected(self, system):
        with pytest.raises(ValueError, match="duration_s must be > 0"):
            MultiScenarioSimulator(
                sessions=[SessionSpec(0, get_scenario("vr_gaming"))],
                system=system,
                scheduler=make_scheduler("latency_greedy"),
                duration_s=0.0,
            )

    def test_spec_zero_duration_rejected(self):
        from repro.api import RunSpec

        with pytest.raises(ValueError, match="duration_s"):
            RunSpec(scenario="vr_gaming", duration_s=0.0)
