"""Tests for the ExecutionEngine abstraction and work items."""

from __future__ import annotations

import pytest

from repro.costmodel import CachedCostTable, CostTable, DvfsPoint
from repro.hardware import build_accelerator
from repro.runtime import ExecutionEngine, WorkItem
from repro.workload import InferenceRequest


def req(code="HT", frame=0, t=0.0, deadline=0.033):
    return InferenceRequest(code, frame, t, deadline)


@pytest.fixture()
def engine():
    system = build_accelerator("J", 4096)
    return ExecutionEngine(sub=system.subs[0])


@pytest.fixture(scope="module")
def table():
    return CostTable()


class TestWorkItem:
    def test_defaults_whole_model(self):
        item = WorkItem(request=req())
        assert item.code == "HT"
        assert item.is_first_segment and item.is_final_segment
        assert item.num_segments == 1

    def test_segment_code_override(self):
        item = WorkItem(request=req("PD"), segment_index=0,
                        num_segments=2, task_code="PD.0")
        assert item.code == "PD.0"
        assert not item.is_final_segment

    def test_successor_advances_segment(self):
        item = WorkItem(request=req("PD"), num_segments=3, task_code="PD.0")
        nxt = item.successor("PD.1")
        assert nxt.segment_index == 1
        assert nxt.code == "PD.1"
        assert nxt.request is item.request

    def test_successor_of_final_raises(self):
        item = WorkItem(request=req())
        with pytest.raises(ValueError, match="no successor"):
            item.successor(None)

    def test_invalid_segment_index(self):
        with pytest.raises(ValueError, match="out of range"):
            WorkItem(request=req(), segment_index=2, num_segments=2)

    def test_session_identity_carried(self):
        item = WorkItem(request=req(), session_id=7)
        assert item.session_id == 7
        assert item.successor is not None  # frozen dataclass still usable


class TestExecutionEngine:
    def test_begin_occupies(self, engine, table):
        cost = table.cost("HT", engine.sub.dataflow, engine.sub.num_pes)
        item = WorkItem(request=req())
        end = engine.begin(item, 0.5, cost)
        assert end == pytest.approx(0.5 + cost.latency_s)
        assert not engine.idle
        assert engine.current is item
        assert engine.busy_until_s == pytest.approx(end)

    def test_double_begin_raises(self, engine, table):
        cost = table.cost("HT", engine.sub.dataflow, engine.sub.num_pes)
        engine.begin(WorkItem(request=req()), 0.0, cost)
        with pytest.raises(ValueError, match="hardware-occupancy"):
            engine.begin(WorkItem(request=req(frame=1)), 0.1, cost)

    def test_finish_idle_raises(self, engine):
        with pytest.raises(ValueError, match="idle"):
            engine.finish(0.0)

    def test_finish_emits_record(self, engine, table):
        cost = table.cost("HT", engine.sub.dataflow, engine.sub.num_pes)
        item = WorkItem(request=req(), session_id=3, segment_index=0,
                        num_segments=1)
        end = engine.begin(item, 0.25, cost)
        returned = engine.finish(end)
        assert returned is item
        assert engine.idle
        [record] = engine.records
        assert record.sub_index == engine.index
        assert record.session_id == 3
        assert record.model_code == "HT"
        assert record.start_s == pytest.approx(0.25)
        assert record.end_s == pytest.approx(end)
        assert record.energy_mj == pytest.approx(cost.energy_mj)

    def test_busy_time_accumulates(self, engine, table):
        cost = table.cost("HT", engine.sub.dataflow, engine.sub.num_pes)
        for frame in range(3):
            end = engine.begin(WorkItem(request=req(frame=frame)), 0.0, cost)
            engine.finish(end)
        assert engine.busy_time_s == pytest.approx(3 * cost.latency_s)

    def test_dvfs_point_slows_and_is_cached_separately(self):
        system = build_accelerator("J", 4096)
        table = CachedCostTable()
        eco = DvfsPoint("eco", 0.5)
        nominal = system.engine_cost(table, "HT", 0)
        scaled = system.engine_cost(table, "HT", 0, eco)
        assert scaled.latency_s == pytest.approx(2 * nominal.latency_s)
        # Both operating points are cached independently.
        assert system.engine_cost(table, "HT", 0, eco) is scaled
        assert system.engine_cost(table, "HT", 0) is nominal

    def test_describe_mentions_dvfs(self):
        system = build_accelerator("J", 4096)
        engine = ExecutionEngine(sub=system.subs[0],
                                 dvfs=DvfsPoint("eco", 0.5))
        assert "eco" in engine.describe()
