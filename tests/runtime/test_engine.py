"""Tests for the ExecutionEngine abstraction and work items."""

from __future__ import annotations

import pytest

from repro.costmodel import CachedCostTable, CostTable, DvfsPoint
from repro.hardware import build_accelerator
from repro.runtime import EngineFleet, ExecutionEngine, WorkItem
from repro.workload import InferenceRequest


def req(code="HT", frame=0, t=0.0, deadline=0.033):
    return InferenceRequest(code, frame, t, deadline)


@pytest.fixture()
def engine():
    system = build_accelerator("J", 4096)
    return ExecutionEngine(sub=system.subs[0])


@pytest.fixture(scope="module")
def table():
    return CostTable()


class TestWorkItem:
    def test_defaults_whole_model(self):
        item = WorkItem(request=req())
        assert item.code == "HT"
        assert item.is_first_segment and item.is_final_segment
        assert item.num_segments == 1

    def test_segment_code_override(self):
        item = WorkItem(request=req("PD"), segment_index=0,
                        num_segments=2, task_code="PD.0")
        assert item.code == "PD.0"
        assert not item.is_final_segment

    def test_successor_advances_segment(self):
        item = WorkItem(request=req("PD"), num_segments=3, task_code="PD.0")
        nxt = item.successor("PD.1")
        assert nxt.segment_index == 1
        assert nxt.code == "PD.1"
        assert nxt.request is item.request

    def test_successor_of_final_raises(self):
        item = WorkItem(request=req())
        with pytest.raises(ValueError, match="no successor"):
            item.successor(None)

    def test_invalid_segment_index(self):
        with pytest.raises(ValueError, match="out of range"):
            WorkItem(request=req(), segment_index=2, num_segments=2)

    def test_session_identity_carried(self):
        item = WorkItem(request=req(), session_id=7)
        assert item.session_id == 7
        assert item.successor is not None  # frozen dataclass still usable


class TestExecutionEngine:
    def test_begin_occupies(self, engine, table):
        cost = table.cost("HT", engine.sub.dataflow, engine.sub.num_pes)
        item = WorkItem(request=req())
        end = engine.begin(item, 0.5, cost)
        assert end == pytest.approx(0.5 + cost.latency_s)
        assert not engine.idle
        assert engine.current is item
        assert engine.busy_until_s == pytest.approx(end)

    def test_double_begin_raises(self, engine, table):
        cost = table.cost("HT", engine.sub.dataflow, engine.sub.num_pes)
        engine.begin(WorkItem(request=req()), 0.0, cost)
        with pytest.raises(ValueError, match="hardware-occupancy"):
            engine.begin(WorkItem(request=req(frame=1)), 0.1, cost)

    def test_finish_idle_raises(self, engine):
        with pytest.raises(ValueError, match="idle"):
            engine.finish(0.0)

    def test_finish_emits_record(self, engine, table):
        cost = table.cost("HT", engine.sub.dataflow, engine.sub.num_pes)
        item = WorkItem(request=req(), session_id=3, segment_index=0,
                        num_segments=1)
        end = engine.begin(item, 0.25, cost)
        returned = engine.finish(end)
        assert returned is item
        assert engine.idle
        [record] = engine.records
        assert record.sub_index == engine.index
        assert record.session_id == 3
        assert record.model_code == "HT"
        assert record.start_s == pytest.approx(0.25)
        assert record.end_s == pytest.approx(end)
        assert record.energy_mj == pytest.approx(cost.energy_mj)

    def test_busy_time_accumulates(self, engine, table):
        cost = table.cost("HT", engine.sub.dataflow, engine.sub.num_pes)
        for frame in range(3):
            end = engine.begin(WorkItem(request=req(frame=frame)), 0.0, cost)
            engine.finish(end)
        assert engine.busy_time_s == pytest.approx(3 * cost.latency_s)

    def test_dvfs_point_slows_and_is_cached_separately(self):
        system = build_accelerator("J", 4096)
        table = CachedCostTable()
        eco = DvfsPoint("eco", 0.5)
        nominal = system.engine_cost(table, "HT", 0)
        scaled = system.engine_cost(table, "HT", 0, eco)
        assert scaled.latency_s == pytest.approx(2 * nominal.latency_s)
        # Both operating points are cached independently.
        assert system.engine_cost(table, "HT", 0, eco) is scaled
        assert system.engine_cost(table, "HT", 0) is nominal

    def test_describe_mentions_dvfs(self):
        system = build_accelerator("J", 4096)
        engine = ExecutionEngine(sub=system.subs[0],
                                 dvfs=DvfsPoint("eco", 0.5))
        assert "eco" in engine.describe()


class TestEngineFleet:
    @pytest.fixture()
    def fleet(self):
        system = build_accelerator("H", 4096)  # four engines
        return EngineFleet(
            [ExecutionEngine(sub=sub) for sub in system.subs]
        )

    def test_all_idle_initially_index_ordered(self, fleet):
        assert [e.index for e in fleet.idle] == [0, 1, 2, 3]
        assert len(fleet) == 4

    def test_begin_removes_from_idle(self, fleet, table):
        engine = fleet[2]
        cost = table.cost("HT", engine.sub.dataflow, engine.sub.num_pes)
        end = fleet.begin(engine, WorkItem(request=req()), 0.0, cost)
        assert end == pytest.approx(cost.latency_s)
        assert [e.index for e in fleet.idle] == [0, 1, 3]
        assert not engine.idle

    def test_finish_reinserts_in_index_order(self, fleet, table):
        cost = table.cost("HT", fleet[0].sub.dataflow, fleet[0].sub.num_pes)
        for frame, engine in enumerate(list(fleet)):
            fleet.begin(engine, WorkItem(request=req(frame=frame)), 0.0,
                        cost)
        assert fleet.idle == []
        # Release out of order; the idle list comes back index-sorted.
        for index in (3, 0, 2, 1):
            fleet.finish(index, 1.0)
        assert [e.index for e in fleet.idle] == [0, 1, 2, 3]

    def test_idle_list_is_live(self, fleet, table):
        # The event loop holds one reference for the whole run.
        idle = fleet.idle
        cost = table.cost("HT", fleet[0].sub.dataflow, fleet[0].sub.num_pes)
        fleet.begin(fleet[0], WorkItem(request=req()), 0.0, cost)
        assert [e.index for e in idle] == [1, 2, 3]
        fleet.finish(0, 1.0)
        assert [e.index for e in idle] == [0, 1, 2, 3]

    def test_busy_begin_keeps_idle_set_consistent(self, fleet, table):
        cost = table.cost("HT", fleet[0].sub.dataflow, fleet[0].sub.num_pes)
        fleet.begin(fleet[0], WorkItem(request=req()), 0.0, cost)
        with pytest.raises(ValueError, match="hardware-occupancy"):
            fleet.begin(fleet[0], WorkItem(request=req(frame=1)), 0.1, cost)
        assert [e.index for e in fleet.idle] == [1, 2, 3]

    def test_finish_idle_engine_raises_without_corruption(self, fleet):
        with pytest.raises(ValueError, match="idle"):
            fleet.finish(1, 0.0)
        assert [e.index for e in fleet.idle] == [0, 1, 2, 3]


class TestBusyTimeHorizon:
    def test_no_horizon_charges_full_latency(self, engine, table):
        cost = table.cost("HT", engine.sub.dataflow, engine.sub.num_pes)
        end = engine.begin(WorkItem(request=req()), 0.0, cost)
        engine.finish(end)
        assert engine.busy_time_s == pytest.approx(cost.latency_s)

    def test_horizon_clips_the_drain_tail(self, table):
        system = build_accelerator("J", 4096)
        cost = table.cost(
            "HT", system.subs[0].dataflow, system.subs[0].num_pes
        )
        horizon = cost.latency_s * 0.5
        engine = ExecutionEngine(sub=system.subs[0], horizon_s=horizon)
        start = cost.latency_s * 0.25
        end = engine.begin(WorkItem(request=req()), start, cost)
        engine.finish(end)
        # Only the overlap with [0, horizon] is charged.
        assert engine.busy_time_s == pytest.approx(horizon - start)

    def test_dispatch_past_horizon_charges_nothing(self, table):
        system = build_accelerator("J", 4096)
        cost = table.cost(
            "HT", system.subs[0].dataflow, system.subs[0].num_pes
        )
        engine = ExecutionEngine(sub=system.subs[0], horizon_s=0.01)
        end = engine.begin(WorkItem(request=req()), 0.02, cost)
        engine.finish(end)
        assert engine.busy_time_s == 0.0
        # The record still shows the true execution interval.
        assert engine.records[-1].start_s == pytest.approx(0.02)
        assert engine.records[-1].end_s == pytest.approx(end)


class TestOperatingPoint:
    def test_starts_at_base_point(self):
        system = build_accelerator("J", 4096)
        low = DvfsPoint("low", 0.7)
        engine = ExecutionEngine(sub=system.subs[0], dvfs=low)
        assert engine.operating_point is low
        assert "[low]" in engine.describe()

    def test_set_operating_point_logs_transitions(self, engine):
        eco = DvfsPoint("eco", 0.5)
        engine.set_operating_point(eco, 0.25)
        engine.set_operating_point(eco, 0.30)  # no-op: already there
        engine.set_operating_point(None, 0.50)
        assert engine.dvfs_transitions == [
            (0.25, None, eco), (0.50, eco, None),
        ]
        assert engine.operating_point is None
