"""Tests for the event queue."""

from __future__ import annotations

import pytest

from repro.runtime import EventKind, EventQueue
from repro.workload import InferenceRequest


def req(code="HT", frame=0):
    return InferenceRequest(code, frame, 0.0, 1.0)


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(0.5, EventKind.ARRIVAL, req(frame=1))
        q.push(0.1, EventKind.ARRIVAL, req(frame=2))
        q.push(0.3, EventKind.ARRIVAL, req(frame=3))
        assert [q.pop().time_s for _ in range(3)] == [0.1, 0.3, 0.5]

    def test_fifo_for_simultaneous_events(self):
        q = EventQueue()
        first, second = req(frame=1), req(frame=2)
        q.push(0.2, EventKind.ARRIVAL, first)
        q.push(0.2, EventKind.ARRIVAL, second)
        assert q.pop().request is first
        assert q.pop().request is second

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q and len(q) == 0
        q.push(0.0, EventKind.ARRIVAL, req())
        assert q and len(q) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError, match="empty"):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="event time"):
            EventQueue().push(-0.1, EventKind.ARRIVAL, req())

    def test_next_time(self):
        q = EventQueue()
        assert q.next_time_s is None
        q.push(0.7, EventKind.ARRIVAL, req())
        assert q.next_time_s == 0.7

    def test_completion_carries_engine(self):
        q = EventQueue()
        q.push(0.4, EventKind.COMPLETION, req(), sub_index=2)
        event = q.pop()
        assert event.kind is EventKind.COMPLETION
        assert event.sub_index == 2
