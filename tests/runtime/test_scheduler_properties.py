"""Property tests: invariants that must hold across ALL registered policies.

Each policy is exercised both directly (randomised pick() calls) and
end-to-end through the multi-tenant engine, whose ExecutionEngine raises
on any occupancy violation — so a completed run is itself the proof that
the policy never dispatched to a busy engine.
"""

from __future__ import annotations

import random

import pytest

from repro.costmodel import CostTable
from repro.hardware import build_accelerator
from repro.runtime import (
    SCHEDULERS,
    EarliestDeadlineScheduler,
    MultiScenarioSimulator,
    RateMonotonicScheduler,
    RoundRobinScheduler,
    make_scheduler,
)
from repro.workload import UNIT_MODELS, InferenceRequest, get_scenario

POLICIES = sorted(SCHEDULERS)
MODEL_CODES = sorted(UNIT_MODELS)


@pytest.fixture(scope="module")
def table():
    return CostTable()


@pytest.fixture(scope="module")
def quad():
    return build_accelerator("H", 4096)  # four engines


def random_case(rng):
    """A random scheduling situation: some waiting requests, some idle."""
    waiting = [
        InferenceRequest(
            model_code=rng.choice(MODEL_CODES),
            model_frame=frame,
            request_time_s=round(rng.uniform(0.0, 0.5), 4),
            deadline_s=round(rng.uniform(0.5, 1.0), 4),
        )
        for frame in range(rng.randint(1, 6))
    ]
    waiting.sort(key=lambda r: r.request_time_s)
    idle = sorted(rng.sample(range(4), rng.randint(1, 4)))
    now = max(r.request_time_s for r in waiting)
    return now, waiting, idle


class TestRegistryConstruction:
    @pytest.mark.parametrize("name", POLICIES)
    def test_all_policies_constructible(self, name):
        assert make_scheduler(name) is not None

    def test_kwargs_forwarded_to_rate_monotonic(self):
        periods = {"HT": 1 / 45, "ES": 1 / 60}
        scheduler = make_scheduler("rate_monotonic", periods=periods)
        assert isinstance(scheduler, RateMonotonicScheduler)
        assert scheduler.periods == periods

    def test_unknown_name_still_raises(self):
        with pytest.raises(KeyError, match="unknown scheduler"):
            make_scheduler("magic")


class TestPickInvariants:
    @pytest.mark.parametrize("name", POLICIES)
    def test_never_picks_busy_engine_or_foreign_request(
        self, name, quad, table
    ):
        rng = random.Random(hash(name) & 0xFFFF)
        for _ in range(50):
            scheduler = make_scheduler(name)
            now, waiting, idle = random_case(rng)
            choice = scheduler.pick(now, waiting, idle, quad, table)
            assert choice is not None  # work and capacity -> must dispatch
            request, engine = choice
            assert request in waiting
            assert engine in idle

    @pytest.mark.parametrize("name", POLICIES)
    def test_no_dispatch_without_work_or_capacity(self, name, quad, table):
        scheduler = make_scheduler(name)
        req = InferenceRequest("HT", 0, 0.0, 0.033)
        assert scheduler.pick(0.0, [], [0, 1], quad, table) is None
        assert scheduler.pick(0.0, [req], [], quad, table) is None

    def test_edf_picks_earliest_deadline(self, quad, table):
        rng = random.Random(99)
        scheduler = EarliestDeadlineScheduler()
        for _ in range(50):
            now, waiting, idle = random_case(rng)
            choice = scheduler.pick(now, waiting, idle, quad, table)
            request, _ = choice
            assert request.deadline_s == min(r.deadline_s for r in waiting)

    def test_round_robin_rotor_resets(self, quad, table):
        scheduler = RoundRobinScheduler()
        req = InferenceRequest("HT", 0, 0.0, 0.033)
        first = [
            scheduler.pick(0.0, [req], [0, 1, 2, 3], quad, table)[1]
            for _ in range(3)
        ]
        scheduler.reset()
        again = [
            scheduler.pick(0.0, [req], [0, 1, 2, 3], quad, table)[1]
            for _ in range(3)
        ]
        assert first == again == [0, 1, 2]


class TestEndToEndInvariants:
    @pytest.mark.parametrize("name", POLICIES)
    @pytest.mark.parametrize("granularity", ["model", "segment"])
    def test_run_completes_without_occupancy_violation(
        self, name, granularity
    ):
        # ExecutionEngine.begin raises on double-occupancy, so finishing
        # the run proves the policy never dispatched to a busy engine.
        result = MultiScenarioSimulator.replicate(
            get_scenario("vr_gaming"),
            build_accelerator("J", 8192),
            make_scheduler(name),
            2,
            granularity=granularity,
        ).run()
        by_engine: dict[int, list] = {}
        for record in result.records:
            by_engine.setdefault(record.sub_index, []).append(record)
        for records in by_engine.values():
            records.sort(key=lambda r: r.start_s)
            for a, b in zip(records, records[1:]):
                assert a.end_s <= b.start_s + 1e-12

    @pytest.mark.parametrize("name", POLICIES)
    def test_multi_session_runs_deterministic_per_seed(self, name):
        def run(seed):
            result = MultiScenarioSimulator.replicate(
                get_scenario("ar_assistant"),
                build_accelerator("J", 8192),
                make_scheduler(name),
                3,
                base_seed=seed,
            ).run()
            return [
                (s.session_id, r.model_code, r.model_frame,
                 r.end_time_s, r.dropped)
                for s in result.sessions
                for r in s.requests
            ]

        assert run(11) == run(11)
        assert run(11) != run(12)
