"""Same-timestamp event ordering under the batch-drain loop.

The event loop drains every event sharing the minimum timestamp as one
batch.  Batching must not reorder anything: events resolve in the
documented ``(time, seq)`` order, which gives build-time lifecycle
events (JOIN / PHASE / LEAVE carry low sequence numbers) priority over
same-instant arrivals and completions.  These tests pin that contract
directly at the queue level and end-to-end through a churned,
preemptive, segment-granularity run.
"""

from __future__ import annotations

import pytest

import repro.runtime.multisim as multisim
from repro.hardware import build_accelerator
from repro.runtime import MultiScenarioSimulator, make_scheduler
from repro.runtime.events import EventKind, EventQueue
from repro.runtime.faults import FaultEvent, FaultPlan
from repro.runtime.multisim import SessionPhase, SessionSpec
from repro.workload import SessionWindow, get_scenario

LIFECYCLE = {
    EventKind.SESSION_JOIN,
    EventKind.SESSION_PHASE,
    EventKind.SESSION_LEAVE,
}


def drain_batch(events: EventQueue) -> list[tuple]:
    """Pop every event sharing the queue's minimum timestamp, in order.

    The same batching the event loop performs: pop, then keep popping
    while the heap's next time equals the batch time.
    """
    batch = [events.pop_fields()]
    while events and events.next_time_s == batch[0][0]:
        batch.append(events.pop_fields())
    return batch


class TestQueueOrdering:
    def test_same_timestamp_pops_in_push_order(self):
        events = EventQueue()
        kinds = [
            EventKind.COMPLETION,
            EventKind.ARRIVAL,
            EventKind.COMPLETION,
            EventKind.ARRIVAL,
        ]
        for kind in kinds:
            events.push(1.0, kind)
        batch = drain_batch(events)
        assert [f[2] for f in batch] == kinds
        seqs = [f[1] for f in batch]
        assert seqs == sorted(seqs)

    def test_lifecycle_outranks_same_instant_work(self):
        """Build-time lifecycle events beat later-pushed work events.

        The simulator schedules JOIN/PHASE/LEAVE up front; arrivals and
        completions are pushed while the run executes.  At a shared
        instant the lifecycle events' lower sequence numbers must drain
        first — a frame arriving exactly when its session leaves is
        processed *after* the leave (and therefore dropped).
        """
        events = EventQueue()
        t = 0.125
        events.push(t, EventKind.SESSION_JOIN, session_id=1)
        events.push(t, EventKind.SESSION_PHASE, session_id=2)
        events.push(t, EventKind.SESSION_LEAVE, session_id=3)
        # Work events land later (higher seq), as they do in a real run.
        events.push(t, EventKind.ARRIVAL, session_id=3)
        events.push(t, EventKind.COMPLETION, sub_index=0, session_id=2)
        batch = drain_batch(events)
        assert [f[2] for f in batch] == [
            EventKind.SESSION_JOIN,
            EventKind.SESSION_PHASE,
            EventKind.SESSION_LEAVE,
            EventKind.ARRIVAL,
            EventKind.COMPLETION,
        ]

    def test_batches_split_on_time_not_kind(self):
        events = EventQueue()
        events.push(2.0, EventKind.ARRIVAL)
        events.push(1.0, EventKind.SESSION_LEAVE)
        events.push(1.0, EventKind.ARRIVAL)
        first = drain_batch(events)
        second = drain_batch(events)
        assert [f[0] for f in first] == [1.0, 1.0]
        assert [f[2] for f in first] == [
            EventKind.SESSION_LEAVE, EventKind.ARRIVAL,
        ]
        assert [(f[0], f[2]) for f in second] == [(2.0, EventKind.ARRIVAL)]

    def test_pop_fields_matches_pop(self):
        a, b = EventQueue(), EventQueue()
        for q in (a, b):
            q.push(0.5, EventKind.ARRIVAL, session_id=4)
            q.push(0.5, EventKind.COMPLETION, sub_index=1, session_id=4)
        while a:
            fields = a.pop_fields()
            event = b.pop()
            assert fields == (
                event.time_s, event.seq, event.kind, event.request,
                event.sub_index, event.session_id,
            )


class _TracingQueue(EventQueue):
    """An EventQueue that logs every popped tuple (test instrumentation)."""

    instances: list["_TracingQueue"] = []

    def __init__(self) -> None:
        super().__init__()
        self.trace: list[tuple] = []
        _TracingQueue.instances.append(self)

    def pop_fields(self):
        fields = super().pop_fields()
        self.trace.append(fields)
        return fields


@pytest.fixture
def traced_queue(monkeypatch):
    _TracingQueue.instances = []
    monkeypatch.setattr(multisim, "EventQueue", _TracingQueue)
    yield _TracingQueue


def run_churned_preemptive(scenario_name="vr_gaming", duration_s=0.25):
    """A run exercising every event kind: churn, phases, preemption,
    segment chains, the slack governor, admission control ticks and a
    fault plan (engine failure/recovery, a thermal window, and the
    retry of work killed mid-flight) all at once."""
    scenario = get_scenario(scenario_name)
    phase_scenario = get_scenario("social_interaction_b")
    specs = [
        SessionSpec(0, scenario, seed=0),
        SessionSpec(1, scenario, seed=1, arrival_s=0.05,
                    departure_s=0.2),
        SessionSpec(2, scenario, seed=2,
                    phases=(SessionPhase(0.125, phase_scenario),)),
    ]
    # A hand-built plan covering every fault event kind; under three
    # vr_gaming sessions both engines are saturated, so failing engine 0
    # mid-run kills in-flight work and arms a WORK_RETRY too.
    plan = FaultPlan(
        profile="single",
        seed=0,
        num_engines=2,
        duration_s=duration_s,
        events=(
            FaultEvent(0.08 * duration_s / 0.25, "thermal_throttle", 1,
                       max_frequency_scale=0.7),
            FaultEvent(0.10 * duration_s / 0.25, "engine_fail", 0),
            FaultEvent(0.18 * duration_s / 0.25, "engine_recover", 0),
            FaultEvent(0.20 * duration_s / 0.25, "thermal_release", 1),
        ),
    )
    sim = MultiScenarioSimulator(
        sessions=specs,
        system=build_accelerator("J", 8192),
        scheduler=make_scheduler("edf", preemptive=True),
        duration_s=duration_s,
        granularity="segment",
        dvfs_policy="slack",
        admission="degrade",
        faults=plan,
    )
    return sim.run()


class TestEndToEndOrdering:
    def test_batch_drain_preserves_time_seq_order(self, traced_queue):
        run_churned_preemptive()
        (events,) = traced_queue.instances
        trace = events.trace
        kinds = {f[2] for f in trace}
        assert kinds == set(EventKind), (
            "the churned+preemptive run must exercise every event kind, "
            f"missing: {set(EventKind) - kinds}"
        )
        # The popped stream is the executed order.  Time never goes
        # backwards (modulo one ulp: a dependent spawned at a completion
        # re-derives its arrival time as ``(now - offset) + offset``,
        # which can round a hair below ``now`` — such an arrival starts
        # its own batch, exactly as the per-event loop ordered it), and
        # within one timestamp batch events drain in strictly increasing
        # sequence order — i.e. exactly (time, seq).
        for prev, cur in zip(trace, trace[1:]):
            assert cur[0] >= prev[0] - 1e-12, "event time went backwards"
            if cur[0] == prev[0]:
                assert cur[1] > prev[1], (
                    "same-timestamp batch drained out of seq order"
                )

    def test_join_precedes_same_instant_arrivals(self, traced_queue):
        run_churned_preemptive()
        (events,) = traced_queue.instances
        # Per session: the JOIN must drain before any same-instant work
        # of that session (its arrivals are only scheduled by the JOIN,
        # so they carry later sequence numbers even at the same time).
        first_join: dict[int, int] = {}
        for i, fields in enumerate(events.trace):
            if fields[2] is EventKind.SESSION_JOIN:
                first_join[fields[5]] = i
        assert set(first_join) == {0, 1, 2}
        for i, fields in enumerate(events.trace):
            if fields[2] in (EventKind.ARRIVAL, EventKind.COMPLETION):
                assert i > first_join[fields[5]], (
                    "work event drained before its session joined"
                )

    def test_departed_session_gets_no_late_dispatch(self):
        result = run_churned_preemptive()
        session = result.sessions[1]
        spec_windows = {0: (0.0, None), 1: (0.05, 0.2), 2: (0.0, None)}
        for record in result.records:
            arrival, departure = spec_windows[record.session_id]
            assert record.start_s >= arrival
            if departure is not None:
                assert record.start_s < departure, (
                    "work dispatched at/after the session's departure"
                )
        # The LEAVE retired everything of session 1 that had not already
        # completed — waiting work, pending segment chains, in-flight
        # successors — so every request either finished or is dropped.
        assert session.requests, "expected session 1 to stream frames"
        unresolved = [
            r for r in session.requests
            if r.end_time_s is None and not r.dropped
        ]
        assert not unresolved, (
            "departed session left requests neither completed nor dropped"
        )
        assert any(r.dropped for r in session.requests), (
            "expected the departure to retire at least one frame"
        )

    def test_churned_preemptive_run_is_deterministic(self):
        a = run_churned_preemptive()
        b = run_churned_preemptive()
        rows_a = [(r.start_s, r.end_s, r.sub_index, r.model_code,
                   r.segment_index, r.session_id, r.dvfs)
                  for r in a.records]
        rows_b = [(r.start_s, r.end_s, r.sub_index, r.model_code,
                   r.segment_index, r.session_id, r.dvfs)
                  for r in b.records]
        assert rows_a == rows_b


def test_windows_churn_cell_matches_replicate_contract():
    """The golden-table churn cells' window plumbing stays stable."""
    windows = [SessionWindow(0.0, None), SessionWindow(0.01, 0.2)]
    result = MultiScenarioSimulator.replicate(
        get_scenario("vr_gaming"),
        build_accelerator("J", 8192),
        make_scheduler("latency_greedy"),
        2,
        duration_s=0.25,
        windows=windows,
    ).run()
    for record in result.sessions[1].records:
        assert 0.01 <= record.start_s < 0.2
