"""Fault injection and recovery: plan construction, fleet mechanics,
the kill/requeue machinery, and the resilience invariants.

The invariants at the bottom are the contract the recovery machinery
must keep under any seeded profile:

* nothing vanishes — every request whose in-flight work was killed
  either completes on a surviving engine or is explicitly abandoned as
  ``failed_faulted`` (and dropped);
* a failed engine executes nothing during its downtime, and busy-time
  accounting rolls the unexecuted remainder of killed work back out;
* ``faults="none"`` is byte-for-byte the historical path — not merely
  checksum-equal, but identical on every record and request field.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.costmodel import DEFAULT_DVFS_POINTS
from repro.hardware import build_accelerator
from repro.runtime import (
    FaultEvent,
    FaultPlan,
    MultiScenarioSimulator,
    make_fault_plan,
    make_scheduler,
)
from repro.runtime.engine import EngineFleet, ExecutionEngine, WorkItem
from repro.workload import get_scenario
from repro.workload.requests import InferenceRequest

DURATION_S = 0.25
SEEDED_PROFILES = ("single", "flaky", "thermal")


def run_sim(faults="single", sessions=4, accelerator="J",
            scheduler="latency_greedy", granularity="model",
            dvfs_policy="static", seed=0, duration_s=DURATION_S):
    return MultiScenarioSimulator.replicate(
        get_scenario("vr_gaming"),
        build_accelerator(accelerator, 8192),
        make_scheduler(scheduler),
        sessions,
        base_seed=seed,
        duration_s=duration_s,
        granularity=granularity,
        dvfs_policy=dvfs_policy,
        faults=faults,
        fault_seed=seed,
    ).run()


def downtime_windows(plan: FaultPlan) -> list[tuple[int, float, float]]:
    """(engine, fail_s, recover_s) per outage; open outages end at the
    plan's duration."""
    windows = []
    open_at: dict[int, float] = {}
    for event in sorted(plan.events, key=lambda e: e.time_s):
        if event.kind == "engine_fail":
            open_at[event.engine_index] = event.time_s
        elif event.kind == "engine_recover":
            windows.append(
                (event.engine_index, open_at.pop(event.engine_index),
                 event.time_s)
            )
    for engine, start in open_at.items():
        windows.append((engine, start, plan.duration_s))
    return windows


class TestFaultPlanConstruction:
    def test_none_profile_returns_no_plan(self):
        assert make_fault_plan("none", 2, DURATION_S) is None

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown fault profile"):
            make_fault_plan("bitflip", 2, DURATION_S)

    @pytest.mark.parametrize("profile", SEEDED_PROFILES)
    def test_deterministic_in_profile_and_seed(self, profile):
        a = make_fault_plan(profile, 2, DURATION_S, seed=7)
        b = make_fault_plan(profile, 2, DURATION_S, seed=7)
        assert a == b

    def test_seed_moves_the_schedule(self):
        a = make_fault_plan("single", 2, DURATION_S, seed=0)
        b = make_fault_plan("single", 2, DURATION_S, seed=1)
        assert a.events != b.events

    @pytest.mark.parametrize("profile", SEEDED_PROFILES)
    def test_json_round_trip(self, profile):
        plan = make_fault_plan(profile, 2, DURATION_S, seed=3)
        wire = json.dumps(plan.to_dict())
        assert FaultPlan.from_dict(json.loads(wire)) == plan

    @pytest.mark.parametrize("profile", SEEDED_PROFILES)
    @pytest.mark.parametrize("engines", [2, 4])
    @pytest.mark.parametrize("seed", range(5))
    def test_profiles_valid_on_real_fleet_sizes(self, profile, engines,
                                                seed):
        plan = make_fault_plan(profile, engines, DURATION_S, seed=seed)
        assert plan.events
        for event in plan.events:
            assert 0 <= event.time_s < DURATION_S
            assert 0 <= event.engine_index < engines

    @pytest.mark.parametrize("profile", ["single", "flaky"])
    def test_failing_the_whole_fleet_is_vetoed(self, profile):
        with pytest.raises(ValueError,
                           match=r"fails all 1 engine\(s\) simultaneously"):
            make_fault_plan(profile, 1, DURATION_S)

    def test_thermal_survives_a_single_engine(self):
        # Throttling is not an outage: capacity remains, so no veto.
        plan = make_fault_plan("thermal", 1, DURATION_S)
        assert plan.has_thermal

    def test_runspec_vetoes_fleetwide_outage_at_compile_time(self):
        from repro.api import RunSpec

        with pytest.raises(ValueError, match="fails all 1 engine"):
            RunSpec(scenario="vr_gaming", accelerator="A", pes=4096,
                    duration_s=DURATION_S, faults="single")

    def test_runspec_rejects_unknown_profile(self):
        from repro.api import RunSpec

        with pytest.raises(ValueError, match="faults"):
            RunSpec(scenario="vr_gaming", accelerator="J", pes=4096,
                    duration_s=DURATION_S, faults="bitflip")


class TestFaultEventValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault event kind"):
            FaultEvent(0.1, "meltdown", 0)

    def test_negative_time(self):
        with pytest.raises(ValueError, match="time must be >= 0"):
            FaultEvent(-0.1, "engine_fail", 0)

    def test_throttle_requires_a_ceiling(self):
        with pytest.raises(ValueError, match="need a max_frequency_scale"):
            FaultEvent(0.1, "thermal_throttle", 0)

    def test_only_throttle_carries_a_ceiling(self):
        with pytest.raises(ValueError, match="carry no max_frequency_scale"):
            FaultEvent(0.1, "engine_fail", 0, max_frequency_scale=0.7)


class TestFaultPlanValidation:
    def plan(self, *events, engines=2):
        return FaultPlan(profile="custom", seed=0, num_engines=engines,
                         duration_s=DURATION_S, events=events)

    def test_double_fail_without_recovery(self):
        with pytest.raises(ValueError, match="fails twice"):
            self.plan(FaultEvent(0.05, "engine_fail", 0),
                      FaultEvent(0.10, "engine_fail", 0))

    def test_recover_without_failure(self):
        with pytest.raises(ValueError, match="without a preceding failure"):
            self.plan(FaultEvent(0.05, "engine_recover", 0))

    def test_event_outside_run_window(self):
        with pytest.raises(ValueError, match="outside the run window"):
            self.plan(FaultEvent(DURATION_S + 0.1, "engine_fail", 0),
                      FaultEvent(DURATION_S + 0.2, "engine_recover", 0))

    def test_event_targets_missing_engine(self):
        with pytest.raises(ValueError, match="targets engine 5"):
            self.plan(FaultEvent(0.05, "engine_fail", 5))

    def test_overlapping_outages_on_every_engine_vetoed(self):
        with pytest.raises(ValueError, match="fails all 2 engine"):
            self.plan(FaultEvent(0.05, "engine_fail", 0),
                      FaultEvent(0.10, "engine_fail", 1),
                      FaultEvent(0.15, "engine_recover", 0),
                      FaultEvent(0.20, "engine_recover", 1))

    def test_staggered_outages_accepted(self):
        plan = self.plan(FaultEvent(0.05, "engine_fail", 0),
                         FaultEvent(0.10, "engine_recover", 0),
                         FaultEvent(0.15, "engine_fail", 1),
                         FaultEvent(0.20, "engine_recover", 1))
        assert not plan.has_thermal


class TestEngineFaultMechanics:
    @pytest.fixture
    def fleet(self):
        system = build_accelerator("J", 8192)
        return EngineFleet([
            ExecutionEngine(sub=sub) for sub in system.subs
        ])

    def item(self):
        request = InferenceRequest(model_code="OD0", model_frame=0,
                                   request_time_s=0.0, deadline_s=0.1)
        return WorkItem(request=request, session_id=0)

    def test_failed_idle_engine_leaves_and_rejoins_idle_list(self, fleet):
        assert [e.index for e in fleet.idle] == [0, 1]
        assert fleet.fail(0, 0.01) is None
        assert [e.index for e in fleet.idle] == [1]
        assert fleet.engines[0].failed
        fleet.recover(0, 0.02)
        assert [e.index for e in fleet.idle] == [0, 1]
        assert fleet.engines[0].health_log == [(0.01, "fail"),
                                               (0.02, "recover")]

    def test_failed_engine_refuses_work(self, fleet):
        fleet.fail(0, 0.01)
        cost = SimpleNamespace(latency_s=0.01, energy_mj=4.0)
        with pytest.raises(ValueError, match="failed and cannot accept"):
            fleet.engines[0].begin(self.item(), 0.02, cost)

    def test_double_fail_and_spurious_recover_rejected(self, fleet):
        fleet.fail(0, 0.01)
        with pytest.raises(ValueError, match="already failed"):
            fleet.fail(0, 0.02)
        with pytest.raises(ValueError, match="not failed"):
            fleet.recover(1, 0.02)

    def test_failing_busy_engine_aborts_and_rolls_back(self, fleet):
        engine = fleet.engines[0]
        item = self.item()
        cost = SimpleNamespace(latency_s=0.010, energy_mj=4.0)
        end_s = fleet.begin(engine, item, 0.0, cost)
        assert end_s == pytest.approx(0.010)
        # Kill halfway: half the energy is spent, half the busy time
        # must be rolled back, and the record is a truncated abort.
        killed = fleet.fail(0, 0.005)
        assert killed is not None
        k_item, planned_end_s, unspent_mj = killed
        assert k_item is item
        assert planned_end_s == pytest.approx(0.010)
        assert unspent_mj == pytest.approx(2.0)
        assert engine.idle and engine.failed
        assert engine.busy_time_s == pytest.approx(0.005)
        record = engine.records[-1]
        assert record.aborted
        assert record.end_s == pytest.approx(0.005)
        assert record.energy_mj == pytest.approx(2.0)

    def test_throttle_clamps_to_fastest_permitted_ladder_point(self, fleet):
        engine = fleet.engines[0]
        base = engine.dvfs  # None = nominal (scale 1.0)
        engine.throttle(0.01, 0.7, DEFAULT_DVFS_POINTS)
        clamped = engine.effective_dvfs
        assert clamped is not None
        assert clamped.frequency_scale == pytest.approx(0.7)
        engine.release_thermal(0.02)
        assert engine.effective_dvfs is base

    def test_throttle_below_ladder_floor_picks_slowest_point(self, fleet):
        engine = fleet.engines[0]
        engine.throttle(0.01, 0.1, DEFAULT_DVFS_POINTS)
        floor = min(DEFAULT_DVFS_POINTS, key=lambda p: p.frequency_scale)
        assert engine.effective_dvfs.frequency_scale == pytest.approx(
            floor.frequency_scale
        )


class TestRecoveryMachinery:
    def test_requeued_work_completes_on_a_survivor(self):
        result = run_sim("single")
        plan = make_fault_plan("single", 2, DURATION_S, seed=0)
        ((dead_engine, fail_s, recover_s),) = downtime_windows(plan)
        records = [s.faults for s in result.sessions]
        assert sum(f.killed for f in records) >= 1
        assert sum(f.retries for f in records) >= 1
        recovered = [s for s in result.sessions if s.faults.recovered]
        assert recovered, "expected at least one killed request to recover"
        for sim in recovered:
            assert all(
                latency > 0 for latency in sim.faults.recovery_latencies_s
            )
            kinds = [a.kind for a in sim.faults.actions]
            assert "kill" in kinds
        # The frame that recovered finished as a real execution record on
        # an engine that was up at the time.
        for sim in result.sessions:
            for request in sim.requests:
                if request.faulted and request.completed:
                    finals = [
                        r for r in result.records
                        if r.session_id == sim.session_id
                        and r.model_code == request.model_code
                        and r.model_frame == request.model_frame
                        and not r.aborted
                    ]
                    assert finals, "recovered request left no record"

    def test_zero_retry_budget_abandons_killed_work(self):
        plan = make_fault_plan("single", 2, DURATION_S, seed=0)
        strict = FaultPlan(
            profile=plan.profile, seed=plan.seed,
            num_engines=plan.num_engines, duration_s=plan.duration_s,
            events=plan.events, retry_budget=0,
        )
        result = run_sim(strict)
        abandoned = [
            r for s in result.sessions for r in s.requests
            if r.failed_faulted
        ]
        assert abandoned
        for request in abandoned:
            assert request.dropped and not request.completed
        kinds = [
            a.kind for s in result.sessions for a in s.faults.actions
        ]
        assert "exhausted" in kinds
        assert sum(s.faults.retries for s in result.sessions) == 0
        assert sum(s.faults.lost for s in result.sessions) >= len(abandoned)

    def test_every_session_gets_a_fault_stamp(self):
        result = run_sim("flaky")
        for sim in result.sessions:
            assert sim.faults is not None
            assert sim.faults.profile == "flaky"

    def test_no_plan_means_no_stamp(self):
        result = run_sim("none")
        for sim in result.sessions:
            assert sim.faults is None

    def test_thermal_clamps_governed_dispatches(self):
        plan = make_fault_plan("thermal", 2, DURATION_S, seed=0)
        (throttle,) = [
            e for e in plan.events if e.kind == "thermal_throttle"
        ]
        (release,) = [
            e for e in plan.events if e.kind == "thermal_release"
        ]
        result = run_sim("thermal", dvfs_policy="slack")
        scale_of = {p.name: p.frequency_scale for p in DEFAULT_DVFS_POINTS}
        throttled = [
            r for r in result.records
            if r.sub_index == throttle.engine_index
            and throttle.time_s <= r.start_s < release.time_s
        ]
        assert throttled, "expected dispatches on the throttled engine"
        for record in throttled:
            scale = scale_of[record.dvfs] if record.dvfs else 1.0
            assert scale <= throttle.max_frequency_scale + 1e-12


class TestResilienceInvariants:
    @pytest.mark.parametrize("profile", ["single", "flaky"])
    @pytest.mark.parametrize("seed", range(3))
    def test_killed_work_never_vanishes(self, profile, seed):
        """Every request whose dispatch was killed either completed on a
        surviving engine or was explicitly abandoned — no third state."""
        result = run_sim(profile, seed=seed)
        saw_fault = False
        for sim in result.sessions:
            for request in sim.requests:
                if not request.faulted:
                    continue
                saw_fault = True
                assert request.completed or request.failed_faulted, (
                    f"request {request.request_id} was killed but neither "
                    "completed nor failed_faulted"
                )
                if request.failed_faulted:
                    assert request.dropped
        assert saw_fault, "profile produced no kills; weak test"
        # The per-session ledgers agree with the request flags.
        killed = sum(s.faults.killed for s in result.sessions)
        recovered = sum(s.faults.recovered for s in result.sessions)
        lost = sum(s.faults.lost for s in result.sessions)
        assert killed == recovered + lost

    @pytest.mark.parametrize("profile", ["single", "flaky"])
    @pytest.mark.parametrize("seed", range(3))
    def test_downtime_executes_nothing(self, profile, seed):
        """A failed engine's downtime contains no execution: every record
        on it ends by the failure instant or starts after recovery —
        busy time can never include downtime."""
        result = run_sim(profile, seed=seed)
        plan = make_fault_plan(profile, 2, DURATION_S, seed=seed)
        for engine, fail_s, recover_s in downtime_windows(plan):
            for record in result.records:
                if record.sub_index != engine:
                    continue
                assert (record.end_s <= fail_s + 1e-9
                        or record.start_s >= recover_s - 1e-9), (
                    f"record [{record.start_s}, {record.end_s}] overlaps "
                    f"engine {engine} downtime [{fail_s}, {recover_s}]"
                )

    @pytest.mark.parametrize("granularity", ["model", "segment"])
    def test_faults_none_is_the_historical_path(self, granularity):
        """Field-for-field equality, not just a digest: the fault hooks
        must be invisible when no plan is installed."""
        def rows(result):
            return [
                (r.start_s, r.end_s, r.sub_index, r.model_code,
                 r.model_frame, r.segment_index, r.session_id,
                 r.energy_mj, r.dvfs, r.aborted)
                for r in result.records
            ]

        def request_rows(result):
            return [
                (q.request_id, q.model_code, q.model_frame,
                 q.request_time_s, q.start_time_s, q.end_time_s,
                 q.energy_mj, q.dropped, q.faulted, q.failed_faulted)
                for s in result.sessions for q in s.requests
            ]

        gated = run_sim("none", granularity=granularity)
        plain = MultiScenarioSimulator.replicate(
            get_scenario("vr_gaming"),
            build_accelerator("J", 8192),
            make_scheduler("latency_greedy"),
            4,
            base_seed=0,
            duration_s=DURATION_S,
            granularity=granularity,
        ).run()
        assert rows(gated) == rows(plain)
        # Request ids are process-global counters, so compare positionally
        # modulo the id offset between the two runs.
        a, b = request_rows(gated), request_rows(plain)
        assert len(a) == len(b)
        for ra, rb in zip(a, b):
            assert ra[1:] == rb[1:]
