"""Tests for the discrete-event simulator."""

from __future__ import annotations

import pytest

from repro.costmodel import CostTable
from repro.hardware import build_accelerator
from repro.runtime import LatencyGreedyScheduler, Simulator
from repro.workload import get_scenario


def simulate(scenario="vr_gaming", acc="A", pes=8192, duration=1.0, seed=0,
             costs=None):
    return Simulator(
        scenario=get_scenario(scenario),
        system=build_accelerator(acc, pes),
        scheduler=LatencyGreedyScheduler(),
        duration_s=duration,
        seed=seed,
        costs=costs or CostTable(),
    ).run()


@pytest.fixture(scope="module")
def table():
    return CostTable()


@pytest.fixture(scope="module")
def vr_result(table):
    return simulate(costs=table)


class TestBasicInvariants:
    def test_every_request_completed_or_dropped_or_both_not(self, vr_result):
        for r in vr_result.requests:
            assert r.completed != r.dropped  # exactly one outcome

    def test_completed_have_engine_and_energy(self, vr_result):
        for r in vr_result.completed():
            assert r.accelerator_id is not None
            assert r.energy_mj is not None and r.energy_mj > 0
            assert r.start_time_s is not None

    def test_dropped_never_started(self, vr_result):
        for r in vr_result.dropped():
            assert r.start_time_s is None

    def test_start_after_request_time(self, vr_result):
        for r in vr_result.completed():
            assert r.start_time_s >= r.request_time_s - 1e-12

    def test_end_after_start(self, vr_result):
        for r in vr_result.completed():
            assert r.end_time_s > r.start_time_s

    def test_dependency_order_respected(self, vr_result, table):
        # Every GE inference must start after some ES inference completed
        # at or before its request time (its data source).
        es_ends = sorted(
            r.end_time_s for r in vr_result.completed("ES")
        )
        for ge in vr_result.completed("GE"):
            assert any(e <= ge.request_time_s + 1e-12 for e in es_ends)

    def test_no_engine_overlap(self, vr_result):
        # Hardware-occupancy condition: per-engine segments never overlap.
        by_engine: dict[int, list] = {}
        for r in vr_result.completed():
            by_engine.setdefault(r.accelerator_id, []).append(r)
        for requests in by_engine.values():
            requests.sort(key=lambda r: r.start_time_s)
            for a, b in zip(requests, requests[1:]):
                assert a.end_time_s <= b.start_time_s + 1e-12

    def test_busy_time_consistent(self, vr_result):
        for i in range(vr_result.system.num_subs):
            total = sum(
                r.end_time_s - r.start_time_s
                for r in vr_result.completed()
                if r.accelerator_id == i
            )
            assert vr_result.busy_time_s[i] == pytest.approx(total)


class TestFrameAccounting:
    def test_root_spawn_counts_match_rates(self, vr_result):
        assert vr_result.num_frames("HT") == 45
        assert vr_result.num_frames("ES") == 60

    def test_ge_spawns_only_from_completed_es(self, vr_result):
        assert vr_result.num_frames("GE") <= len(vr_result.completed("ES"))

    def test_drop_rate_range(self, vr_result):
        assert 0.0 <= vr_result.frame_drop_rate() <= 1.0

    def test_utilization_is_raw_busy_fraction(self, vr_result):
        # Overload is signal: utilization is the unclamped busy fraction
        # (reports clamp at display time only).
        for i in range(vr_result.system.num_subs):
            expected = vr_result.busy_time_s[i] / vr_result.duration_s
            assert vr_result.utilization(i) == pytest.approx(expected)
            assert vr_result.utilization(i) >= 0.0

    def test_overloaded_utilization_caps_at_one(self, table):
        # A saturated run keeps an engine busy past duration_s (in-flight
        # work drains), but busy time is clipped to the measurement
        # window at accounting time, so the occupancy share saturates at
        # exactly 100% instead of overcounting the drain tail.
        result = simulate("ar_gaming", "J", 4096, costs=table)
        top = max(
            result.utilization(i) for i in range(result.system.num_subs)
        )
        assert top == pytest.approx(1.0)
        assert top <= 1.0 + 1e-9
        # The drain tail is still visible in the occupancy log.
        assert max(r.end_s for r in result.records) > result.duration_s


class TestDeterminism:
    def test_same_seed_same_outcome(self, table):
        a = simulate(seed=7, costs=table)
        b = simulate(seed=7, costs=table)
        sig_a = [(r.model_code, r.model_frame, r.end_time_s, r.dropped)
                 for r in a.requests]
        sig_b = [(r.model_code, r.model_frame, r.end_time_s, r.dropped)
                 for r in b.requests]
        assert sig_a == sig_b

    def test_different_seed_different_jitter(self, table):
        a = simulate(seed=0, costs=table)
        b = simulate(seed=42, costs=table)
        ta = [r.request_time_s for r in a.requests]
        tb = [r.request_time_s for r in b.requests]
        assert ta != tb


class TestSaturationBehaviour:
    def test_overloaded_system_drops_frames(self, table):
        # AR gaming on a 4K-PE system saturates (Figure 6).
        result = simulate("ar_gaming", "J", 4096, costs=table)
        assert result.frame_drop_rate() > 0.15
        assert result.mean_utilization() > 0.9

    def test_bigger_system_drops_fewer(self, table):
        small = simulate("ar_gaming", "J", 4096, costs=table)
        big = simulate("ar_gaming", "J", 8192, costs=table)
        assert big.frame_drop_rate() < small.frame_drop_rate()

    def test_light_scenario_no_drops(self, table):
        result = simulate("outdoor_activity_a", "A", 8192, costs=table)
        assert result.frame_drop_rate() == 0.0

    def test_in_flight_work_finishes_after_duration(self, table):
        # Streams stop at duration_s but in-flight inference completes.
        result = simulate("ar_gaming", "J", 4096, costs=table)
        last_end = max(r.end_time_s for r in result.completed())
        assert last_end > result.duration_s


class TestControlDependency:
    def test_sr_triggered_fraction(self, table):
        # AR assistant cascades KD -> SR with p = 0.5; over many seeds the
        # trigger count should approximate half the KD completions.
        triggered = total_kd = 0
        for seed in range(30):
            result = simulate("ar_assistant", "A", 8192, seed=seed,
                              costs=table)
            triggered += result.num_frames("SR")
            total_kd += len(result.completed("KD"))
        assert 0.3 < triggered / total_kd < 0.7

    def test_duration_scales_requests(self, table):
        short = simulate("vr_gaming", "A", 8192, duration=0.5, costs=table)
        long = simulate("vr_gaming", "A", 8192, duration=2.0, costs=table)
        assert len(long.requests) > 3 * len(short.requests)
