"""Tests for Herald-style model segmentation."""

from __future__ import annotations

import pytest

from repro.core import score_simulation
from repro.costmodel import Dataflow
from repro.hardware import build_accelerator
from repro.runtime import (
    LatencyGreedyScheduler,
    SegmentedCostTable,
    Simulator,
    segment_scenario,
    split_graph,
)
from repro.runtime.segmentation import segment_code
from repro.workload import get_scenario
from repro.zoo import build_model


class TestSplitGraph:
    def test_single_segment_is_identity(self):
        g = build_model("PD")
        assert split_graph(g, 1) == [g]

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_partition_covers_all_layers(self, k):
        g = build_model("PD")
        pieces = split_graph(g, k)
        assert len(pieces) == k
        recombined = [layer for p in pieces for layer in p.layers]
        assert recombined == list(g.layers)

    def test_macs_conserved(self):
        g = build_model("PD")
        pieces = split_graph(g, 3)
        assert sum(p.total_macs for p in pieces) == g.total_macs

    def test_segments_roughly_balanced(self):
        g = build_model("PD")
        pieces = split_graph(g, 2)
        shares = [p.total_macs / g.total_macs for p in pieces]
        assert all(0.2 < s < 0.8 for s in shares), shares

    def test_shape_chain_continuous(self):
        pieces = split_graph(build_model("PD"), 4)
        for a, b in zip(pieces, pieces[1:]):
            assert a.out_shape == b.input_shape

    def test_residual_safety(self):
        # No segment may reference a residual source in another segment —
        # ModelGraph validation would reject it, so construction succeeding
        # is the proof; verify explicitly anyway.
        for piece in split_graph(build_model("DE"), 3):
            names = {layer.name for layer in piece.layers}
            for layer in piece.layers:
                if layer.residual_from is not None:
                    assert layer.residual_from in names

    def test_rejects_zero_segments(self):
        with pytest.raises(ValueError, match="segments"):
            split_graph(build_model("PD"), 0)

    def test_rejects_more_segments_than_layers(self):
        g = build_model("KD")
        with pytest.raises(ValueError):
            split_graph(g, g.num_layers + 1)


class TestSegmentedCostTable:
    def test_registered_graph_used(self):
        table = SegmentedCostTable()
        pieces = split_graph(build_model("PD"), 2)
        table.register_graph("PD.0", pieces[0])
        cost = table.cost("PD.0", Dataflow.WS, 4096)
        assert cost.model_name == "plane_detection.0"

    def test_segments_cheaper_than_whole(self):
        table = SegmentedCostTable()
        pieces = split_graph(build_model("PD"), 2)
        table.register_graph("PD.0", pieces[0])
        table.register_graph("PD.1", pieces[1])
        whole = table.cost("PD", Dataflow.WS, 4096).latency_s
        part0 = table.cost("PD.0", Dataflow.WS, 4096).latency_s
        part1 = table.cost("PD.1", Dataflow.WS, 4096).latency_s
        assert part0 < whole and part1 < whole
        # Splitting adds only the per-layer ramp overhead.
        assert part0 + part1 == pytest.approx(whole, rel=0.05)

    def test_zoo_codes_still_work(self):
        table = SegmentedCostTable()
        assert table.cost("KD", Dataflow.WS, 1024).latency_s > 0

    def test_duplicate_registration_rejected(self):
        table = SegmentedCostTable()
        pieces = split_graph(build_model("PD"), 2)
        table.register_graph("PD.0", pieces[0])
        with pytest.raises(ValueError, match="already registered"):
            table.register_graph("PD.0", pieces[1])


class TestSegmentScenario:
    def test_replaces_model_with_chain(self):
        scenario, _ = segment_scenario(get_scenario("ar_gaming"), "PD", 2)
        assert "PD" not in scenario.codes
        assert segment_code("PD", 0) in scenario.codes
        assert segment_code("PD", 1) in scenario.codes

    def test_chain_dependencies(self):
        scenario, _ = segment_scenario(get_scenario("ar_gaming"), "PD", 3)
        assert scenario.upstream_of("PD.0") is None
        assert scenario.upstream_of("PD.1").upstream == "PD.0"
        assert scenario.upstream_of("PD.2").upstream == "PD.1"

    def test_intermediate_segments_marked_aux(self):
        scenario, _ = segment_scenario(get_scenario("ar_gaming"), "PD", 3)
        assert scenario.get("PD.0").aux
        assert scenario.get("PD.1").aux
        assert not scenario.get("PD.2").aux

    def test_rates_inherited(self):
        scenario, _ = segment_scenario(get_scenario("ar_gaming"), "PD", 2)
        assert scenario.fps_of("PD.0") == 30
        assert scenario.fps_of("PD.1") == 30

    def test_inactive_model_rejected(self):
        with pytest.raises(KeyError):
            segment_scenario(get_scenario("ar_gaming"), "SS", 2)

    def test_dependent_model_rejected(self):
        with pytest.raises(ValueError, match="dependency"):
            segment_scenario(get_scenario("vr_gaming"), "ES", 2)

    def test_single_segment_rejected(self):
        with pytest.raises(ValueError, match="segments"):
            segment_scenario(get_scenario("ar_gaming"), "PD", 1)


class TestSegmentedExecution:
    def run(self, segments: int):
        if segments == 1:
            scenario, table = get_scenario("ar_gaming"), SegmentedCostTable()
        else:
            scenario, table = segment_scenario(
                get_scenario("ar_gaming"), "PD", segments
            )
        sim = Simulator(
            scenario=scenario, system=build_accelerator("J", 4096),
            scheduler=LatencyGreedyScheduler(), duration_s=1.0,
            costs=table,
        ).run()
        return sim, score_simulation(sim)

    def test_runs_end_to_end(self):
        sim, score = self.run(2)
        assert 0.0 <= score.overall <= 1.0
        assert sim.completed("PD.1")

    def test_segments_execute_in_order(self):
        sim, _ = self.run(2)
        firsts = {
            r.model_frame: r.end_time_s for r in sim.completed("PD.0")
        }
        for second in sim.completed("PD.1"):
            assert second.model_frame in firsts
            assert second.start_time_s >= firsts[second.model_frame] - 1e-12

    def test_pipelining_improves_pd_throughput(self):
        # The Herald trade-off: splitting the saturating model raises its
        # completed-frame rate (QoE) even though per-frame latency (RT)
        # stays deadline-bound.
        _, whole = self.run(1)
        _, split = self.run(2)
        pd_whole = whole.model("PD")
        pd_split = split.model("PD.1")
        assert pd_split.qoe > pd_whole.qoe + 0.1

    def test_aux_segments_not_scored(self):
        _, score = self.run(2)
        scored = {m.model_code for m in score.scored_models}
        assert "PD.0" not in scored
        assert "PD.1" in scored


class TestSharedTableReuse:
    """Regression: a table reused across segmented runs must not raise.

    ``segment_scenario`` used to call ``register_graph`` unguarded, so
    the second segmentation against one shared table — the Experiment
    shared-cost-table path — failed with "already registered".
    """

    def test_segment_scenario_twice_on_one_table(self):
        table = SegmentedCostTable()
        first, t1 = segment_scenario(
            get_scenario("ar_gaming"), "PD", 2, table
        )
        second, t2 = segment_scenario(
            get_scenario("ar_gaming"), "PD", 2, table
        )
        assert t1 is table and t2 is table
        assert first.get(segment_code("PD", 0)) is not None
        assert second.get(segment_code("PD", 0)) is not None

    def test_conflicting_split_counts_still_rejected(self):
        table = SegmentedCostTable()
        segment_scenario(get_scenario("ar_gaming"), "PD", 2, table)
        with pytest.raises(ValueError, match="already registered"):
            # PD.0 from a 3-way split is a *different* graph under the
            # same scenario-level code: silent reuse would price the
            # 3-way segment against the stale 2-way piece.
            segment_scenario(get_scenario("ar_gaming"), "PD", 3, table)

    def test_back_to_back_segmented_runs_share_dispatch_table(self):
        from repro.costmodel import CachedCostTable
        from repro.runtime import MultiScenarioSimulator, make_scheduler

        table = CachedCostTable()
        results = []
        for _ in range(2):
            results.append(MultiScenarioSimulator.replicate(
                get_scenario("vr_gaming"),
                build_accelerator("J", 8192),
                make_scheduler("latency_greedy"),
                2,
                duration_s=0.2,
                granularity="segment",
                costs=table,
            ).run())
        # Identical runs through the shared table are bit-identical.
        logs = [
            [(r.start_s, r.sub_index, r.model_code, r.segment_index)
             for r in result.records]
            for result in results
        ]
        assert logs[0] == logs[1]
