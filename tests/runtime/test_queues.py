"""Tests for the pending queue, active table and dependency tracker."""

from __future__ import annotations

import pytest

from repro.runtime import ActiveInferenceTable, DependencyTracker, PendingQueue
from repro.workload import InferenceRequest, get_scenario


def req(code="HT", frame=0, t=0.0):
    return InferenceRequest(code, frame, t, t + 0.033)


class TestPendingQueue:
    def test_offer_and_waiting(self):
        q = PendingQueue()
        r = req()
        assert q.offer(r) is None
        assert q.waiting() == [r]

    def test_stale_frame_dropped_on_new_arrival(self):
        q = PendingQueue()
        old, new = req(frame=0, t=0.0), req(frame=1, t=0.033)
        q.offer(old)
        displaced = q.offer(new)
        assert displaced is old
        assert old.dropped
        assert q.waiting() == [new]
        assert q.dropped == [old]

    def test_different_models_coexist(self):
        q = PendingQueue()
        a, b = req("HT"), req("ES")
        q.offer(a)
        assert q.offer(b) is None
        assert len(q) == 2

    def test_waiting_sorted_by_request_time(self):
        q = PendingQueue()
        late, early = req("HT", t=0.5), req("ES", t=0.1)
        q.offer(late)
        q.offer(early)
        assert q.waiting() == [early, late]

    def test_take_removes(self):
        q = PendingQueue()
        r = req()
        q.offer(r)
        q.take(r)
        assert len(q) == 0

    def test_take_wrong_request_raises(self):
        q = PendingQueue()
        a, b = req(frame=0), req(frame=1)
        q.offer(a)
        with pytest.raises(ValueError, match="not waiting"):
            q.take(b)


class TestActiveInferenceTable:
    def test_start_finish_roundtrip(self):
        t = ActiveInferenceTable()
        r = req()
        t.start(0, r)
        assert t.running() == {0: r}
        assert t.finish(0) is r
        assert len(t) == 0

    def test_hardware_occupancy_condition(self):
        # Appendix B.2: one engine cannot run two models simultaneously.
        t = ActiveInferenceTable()
        t.start(0, req("HT"))
        with pytest.raises(ValueError, match="occupancy"):
            t.start(0, req("ES"))

    def test_finish_idle_engine_raises(self):
        with pytest.raises(ValueError, match="idle"):
            ActiveInferenceTable().finish(3)

    def test_idle_engines(self):
        t = ActiveInferenceTable()
        t.start(1, req())
        assert t.idle_engines(3) == [0, 2]


class TestDependencyTracker:
    def test_downstream_of_upstream(self):
        tracker = DependencyTracker(get_scenario("vr_gaming"))
        deps = tracker.downstream_of("ES")
        assert [d.downstream for d in deps] == ["GE"]

    def test_no_downstream(self):
        tracker = DependencyTracker(get_scenario("vr_gaming"))
        assert tracker.downstream_of("HT") == []
