"""Tests for the pending/waiting queues, active table and dependency
tracker."""

from __future__ import annotations

import pytest

from repro.runtime import (
    ActiveInferenceTable,
    DependencyTracker,
    PendingQueue,
    WaitingQueue,
    WorkItem,
)
from repro.workload import InferenceRequest, get_scenario


def req(code="HT", frame=0, t=0.0):
    return InferenceRequest(code, frame, t, t + 0.033)


def item(code="HT", frame=0, t=0.0, session=0):
    return WorkItem(request=req(code, frame, t), session_id=session)


class TestPendingQueue:
    def test_offer_and_waiting(self):
        q = PendingQueue()
        r = req()
        assert q.offer(r) is None
        assert q.waiting() == [r]

    def test_stale_frame_dropped_on_new_arrival(self):
        q = PendingQueue()
        old, new = req(frame=0, t=0.0), req(frame=1, t=0.033)
        q.offer(old)
        displaced = q.offer(new)
        assert displaced is old
        assert old.dropped
        assert q.waiting() == [new]
        assert q.dropped == [old]

    def test_different_models_coexist(self):
        q = PendingQueue()
        a, b = req("HT"), req("ES")
        q.offer(a)
        assert q.offer(b) is None
        assert len(q) == 2

    def test_waiting_sorted_by_request_time(self):
        q = PendingQueue()
        late, early = req("HT", t=0.5), req("ES", t=0.1)
        q.offer(late)
        q.offer(early)
        assert q.waiting() == [early, late]

    def test_take_removes(self):
        q = PendingQueue()
        r = req()
        q.offer(r)
        q.take(r)
        assert len(q) == 0

    def test_take_wrong_request_raises(self):
        q = PendingQueue()
        a, b = req(frame=0), req(frame=1)
        q.offer(a)
        with pytest.raises(ValueError, match="not waiting"):
            q.take(b)


class TestWaitingQueue:
    def test_offer_and_read(self):
        q = WaitingQueue()
        a = item()
        assert q.offer(a) is None
        assert list(q) == [a]
        assert q[0] is a
        assert len(q) == 1 and bool(q)

    def test_kept_in_dispatch_order(self):
        # Sorted by (request_time_s, session_id, model_code), regardless
        # of offer order.
        q = WaitingQueue()
        late = item("HT", t=0.5, session=0)
        early_hi = item("ES", t=0.1, session=1)
        early_lo = item("OD", t=0.1, session=0)
        for work in (late, early_hi, early_lo):
            q.offer(work)
        assert list(q) == [early_lo, early_hi, late]

    def test_stale_frame_dropped_per_session_and_model(self):
        q = WaitingQueue()
        old = item("HT", frame=0, t=0.0, session=1)
        new = item("HT", frame=1, t=0.033, session=1)
        other_session = item("HT", frame=0, t=0.0, session=2)
        q.offer(old)
        q.offer(other_session)
        displaced = q.offer(new)
        assert displaced is old
        assert old.request.dropped
        assert q.dropped == [old.request]
        # The same model in a different session is untouched.
        assert list(q) == [other_session, new]

    def test_take_removes(self):
        q = WaitingQueue()
        a, b = item("HT", session=0), item("ES", session=0)
        q.offer(a)
        q.offer(b)
        q.take(a)
        assert list(q) == [b]

    def test_take_unknown_item_raises(self):
        q = WaitingQueue()
        a = item("HT", frame=0)
        q.offer(a)
        with pytest.raises(ValueError, match="not waiting"):
            q.take(item("HT", frame=1))

    def test_take_displaced_item_raises(self):
        # After a fresh frame displaces it, the stale item is gone.
        q = WaitingQueue()
        old, new = item("HT", frame=0), item("HT", frame=1, t=0.033)
        q.offer(old)
        q.offer(new)
        with pytest.raises(ValueError, match="not waiting"):
            q.take(old)

    def test_equal_sort_keys_coexist(self):
        # Identical (t, session, model) keys cannot collide in practice
        # (one waiting frame per session/model), but bisection must still
        # locate the right identity among equal keys.
        q = WaitingQueue()
        a = item("HT", t=0.2, session=0)
        b = item("HT", t=0.2, session=1)
        c = item("HT", t=0.2, session=2)
        for work in (a, b, c):
            q.offer(work)
        q.take(b)
        assert list(q) == [a, c]


class TestActiveInferenceTable:
    def test_start_finish_roundtrip(self):
        t = ActiveInferenceTable()
        r = req()
        t.start(0, r)
        assert t.running() == {0: r}
        assert t.finish(0) is r
        assert len(t) == 0

    def test_hardware_occupancy_condition(self):
        # Appendix B.2: one engine cannot run two models simultaneously.
        t = ActiveInferenceTable()
        t.start(0, req("HT"))
        with pytest.raises(ValueError, match="occupancy"):
            t.start(0, req("ES"))

    def test_finish_idle_engine_raises(self):
        with pytest.raises(ValueError, match="idle"):
            ActiveInferenceTable().finish(3)

    def test_idle_engines(self):
        t = ActiveInferenceTable()
        t.start(1, req())
        assert t.idle_engines(3) == [0, 2]


class TestDependencyTracker:
    def test_downstream_of_upstream(self):
        tracker = DependencyTracker(get_scenario("vr_gaming"))
        deps = tracker.downstream_of("ES")
        assert [d.downstream for d in deps] == ["GE"]

    def test_no_downstream(self):
        tracker = DependencyTracker(get_scenario("vr_gaming"))
        assert tracker.downstream_of("HT") == []
