"""Tests for the xrbench command-line interface."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import RunSpec
from repro.cli import build_parser, main

REPO_ROOT = Path(__file__).resolve().parents[1]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(
            ["run", "ar_gaming", "J", "--pes", "8192"]
        )
        assert args.scenario == "ar_gaming"
        assert args.accelerator == "J"
        assert args.pes == 8192

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nope", "J"])

    def test_rejects_unknown_accelerator(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "ar_gaming", "Z"])


class TestCommands:
    def test_run(self, capsys):
        assert main(["run", "vr_gaming", "A", "--duration", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "vr_gaming" in out and "overall=" in out

    def test_run_with_timeline(self, capsys):
        assert main(
            ["run", "vr_gaming", "A", "--duration", "0.5", "--timeline"]
        ) == 0
        assert "ms/char" in capsys.readouterr().out

    def test_run_multi_session(self, capsys):
        assert main(
            ["run", "vr_gaming", "J", "--duration", "0.5", "--sessions", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "3 sessions of vr_gaming" in out
        assert "session 2:" in out
        assert "cost cache" in out

    def test_run_segment_granularity(self, capsys):
        assert main(
            ["run", "ar_gaming", "J", "--duration", "0.5",
             "--granularity", "segment"]
        ) == 0
        out = capsys.readouterr().out
        assert "1 sessions of ar_gaming" in out

    def test_run_rejects_bad_session_count(self, capsys):
        assert main(["run", "vr_gaming", "J", "--sessions", "0"]) == 2

    def test_suite(self, capsys):
        assert main(["suite", "A", "--duration", "0.5"]) == 0
        assert "XRBench SCORE" in capsys.readouterr().out

    def test_tables_all(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        for t in ("Table 1", "Table 2", "Table 3", "Table 5", "Table 7"):
            assert t in out

    def test_tables_single(self, capsys):
        assert main(["tables", "--which", "3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "Table 5" not in out

    def test_models_single(self, capsys):
        assert main(["models", "--code", "KD"]) == 0
        out = capsys.readouterr().out
        assert "KD" in out and "WS@4096PE" in out

    def test_figure8(self, capsys):
        assert main(["figure8"]) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_figure6(self, capsys):
        assert main(["figure6", "--duration", "0.5"]) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_figure7_small(self, capsys):
        assert main(["figure7", "--trials", "2", "--duration", "0.5"]) == 0
        assert "Figure 7" in capsys.readouterr().out

    def test_scheduler_flag(self, capsys):
        assert main(
            ["run", "vr_gaming", "A", "--duration", "0.5",
             "--scheduler", "edf"]
        ) == 0

    def test_rate_monotonic_scheduler_flag(self, capsys):
        assert main(
            ["run", "ar_gaming", "J", "--duration", "0.5",
             "--scheduler", "rate_monotonic"]
        ) == 0

    def test_frame_loss_flag(self, capsys):
        assert main(
            ["run", "vr_gaming", "A", "--duration", "0.5",
             "--frame-loss", "0.3"]
        ) == 0
        out = capsys.readouterr().out
        assert "qoe=" in out

    def test_ablations_quantization(self, capsys):
        assert main(["ablations", "--which", "quantization"]) == 0
        out = capsys.readouterr().out
        assert "int8" in out and "acc_score" in out

    def test_ablations_dvfs(self, capsys):
        assert main(["ablations", "--which", "dvfs"]) == 0
        assert "saving" in capsys.readouterr().out

    def test_stats(self, capsys):
        assert main(
            ["stats", "outdoor_activity_a", "A", "--seeds", "3",
             "--duration", "0.5"]
        ) == 0
        out = capsys.readouterr().out
        assert "95% CI" in out

    def test_export_submission(self, capsys):
        assert main(["export", "A", "--duration", "0.5"]) == 0
        out = capsys.readouterr().out
        assert '"benchmark": "XRBench"' in out
        assert "breakdowns" not in out

    def test_export_submission_with_breakdowns(self, capsys):
        assert main(
            ["export", "A", "--duration", "0.5", "--breakdowns"]
        ) == 0
        assert "breakdowns" in capsys.readouterr().out

    def test_observations(self, capsys):
        assert main(["observations"]) == 0
        out = capsys.readouterr().out
        assert "[HOLDS ]" in out and "[BROKEN]" not in out

    def test_export_csv(self, capsys):
        assert main(
            ["export", "A", "--duration", "0.5", "--format", "csv"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("system,scenario,model")

    def test_run_with_churn(self, capsys):
        assert main(
            ["run", "vr_gaming", "J", "--duration", "0.5",
             "--sessions", "3", "--churn", "0.4"]
        ) == 0
        out = capsys.readouterr().out
        assert "3 sessions of vr_gaming" in out
        assert "active=" in out  # per-session active-duration accounting

    def test_run_preemptive_needs_capable_scheduler(self, capsys):
        assert main(
            ["run", "vr_gaming", "J", "--duration", "0.5",
             "--granularity", "segment", "--preemptive"]
        ) == 2
        assert "should_preempt" in capsys.readouterr().err

    def test_run_preemptive_edf(self, capsys):
        assert main(
            ["run", "vr_gaming", "J", "--duration", "0.5",
             "--sessions", "2", "--granularity", "segment",
             "--scheduler", "edf", "--preemptive"]
        ) == 0
        assert "2 sessions of vr_gaming" in capsys.readouterr().out

    def test_churned_sweep_prints_session_means(self, capsys):
        # Churned sweep specs route through the multi-tenant engine
        # (MultiSessionReport), which the table printer must handle.
        assert main(
            ["sweep", "--scenario", "vr_gaming", "--accelerator", "J",
             "--duration", "0.3", "--churn", "0.2"]
        ) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert lines[0].startswith("scenario")
        assert lines[1].startswith("vr_gaming")


class TestChurnedExport:
    """CLI ``export`` across all three formats on a churned suite."""

    CHURN_ARGS = ["export", "A", "--duration", "0.5", "--churn", "0.3"]

    def test_submission_round_trips(self, capsys):
        assert main(self.CHURN_ARGS + ["--breakdowns"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["benchmark"] == "XRBench"
        assert 0.0 <= payload["xrbench_score"] <= 1.0
        assert len(payload["breakdowns"]) == 7

    def test_json_round_trips_with_active_duration(self, capsys):
        assert main(self.CHURN_ARGS + ["--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["scenarios"]) == 7
        for scenario in payload["scenarios"]:
            session = scenario["session"]
            assert session["dynamic"] is True
            # Churned: strictly inside the streamed duration.
            assert 0.0 < session["active_duration_s"] < 0.5
        # The whole document survives a JSON round-trip.
        assert json.loads(json.dumps(payload)) == payload

    def test_csv_parses_with_active_duration_fields(self, capsys):
        import csv as csv_mod
        import io

        assert main(self.CHURN_ARGS + ["--format", "csv"]) == 0
        out = capsys.readouterr().out
        rows = list(csv_mod.DictReader(io.StringIO(out)))
        assert rows
        header = out.splitlines()[0].split(",")
        assert "session_id" in header
        assert "active_duration_s" in header
        for row in rows:
            assert 0.0 < float(row["active_duration_s"]) < 0.5
            assert int(row["session_id"]) == 0

    def test_static_export_reports_full_window(self, capsys):
        assert main(
            ["export", "A", "--duration", "0.5", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        for scenario in payload["scenarios"]:
            session = scenario["session"]
            assert session["dynamic"] is False
            assert session["active_duration_s"] == 0.5


class TestSpecFile:
    def test_run_from_spec_file(self, tmp_path, capsys):
        spec = RunSpec(scenario="vr_gaming", accelerator="A",
                       duration_s=0.5)
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json(indent=2))
        assert main(["run", "--spec", str(path)]) == 0
        out = capsys.readouterr().out
        assert "vr_gaming" in out and "overall=" in out

    def test_run_from_multi_session_spec_file(self, tmp_path, capsys):
        spec = RunSpec(scenario="vr_gaming", accelerator="J",
                       duration_s=0.5, sessions=2)
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert main(["run", "--spec", str(path)]) == 0
        assert "2 sessions of vr_gaming" in capsys.readouterr().out

    def test_spec_and_positionals_conflict(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(RunSpec(scenario="vr_gaming").to_json())
        assert main(["run", "vr_gaming", "A", "--spec", str(path)]) == 2

    def test_missing_positionals_without_spec(self):
        with pytest.raises(SystemExit):
            main(["run"])

    def test_invalid_spec_file_reports_error(self, tmp_path, capsys):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"scenario": "nope"}))
        assert main(["run", "--spec", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("unknown scenario")  # no KeyError-repr quotes

    def test_explicit_flags_override_spec_fields(self, tmp_path, capsys):
        spec = RunSpec(scenario="vr_gaming", accelerator="J",
                       duration_s=0.5)
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert main(["run", "--spec", str(path), "--sessions", "2"]) == 0
        assert "2 sessions of vr_gaming" in capsys.readouterr().out

    def test_explicit_default_value_still_overrides_spec(
        self, tmp_path, capsys
    ):
        spec = RunSpec(scenario="vr_gaming", accelerator="J",
                       duration_s=0.5, sessions=4)
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        # --sessions 1 equals the flag default but was passed explicitly,
        # so it must override the spec's sessions=4.
        assert main(["run", "--spec", str(path), "--sessions", "1"]) == 0
        out = capsys.readouterr().out
        assert "Scenario 'vr_gaming'" in out
        assert "sessions of" not in out

    def test_suite_spec_with_timeline(self, tmp_path, capsys):
        path = tmp_path / "suite.json"
        path.write_text(
            RunSpec.for_suite("A", duration_s=0.5).to_json()
        )
        assert main(["run", "--spec", str(path), "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "XRBench SCORE" in out
        assert "-- ar_gaming --" in out and "ms/char" in out


class TestSweepCommand:
    def test_dry_run_emits_expanded_specs(self, capsys):
        assert main(
            ["sweep", "--dry-run",
             "--scenario", "ar_gaming", "--scenario", "vr_gaming",
             "--accelerator", "A", "--accelerator", "J"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert len(document["specs"]) == 4
        cells = [
            (spec["scenario"], spec["accelerator"])
            for spec in document["specs"]
        ]
        assert cells == [
            ("ar_gaming", "A"), ("ar_gaming", "J"),
            ("vr_gaming", "A"), ("vr_gaming", "J"),
        ]
        # Every emitted spec must round-trip through RunSpec.
        for spec_dict in document["specs"]:
            assert RunSpec.from_dict(spec_dict).to_dict() == spec_dict

    def test_dry_run_validates_against_checked_in_schema(self, capsys):
        jsonschema = pytest.importorskip("jsonschema")
        assert main(
            ["sweep", "--dry-run",
             "--scenario", "ar_gaming", "--scenario", "vr_gaming",
             "--accelerator", "A", "--accelerator", "J"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        schema = json.loads(
            (REPO_ROOT / "schema" / "runspec.schema.json").read_text()
        )
        jsonschema.validate(document, schema)

    def test_dry_run_emits_per_cell_estimates(self, capsys):
        assert main(
            ["sweep", "--dry-run", "--duration", "0.1",
             "--scenario", "ar_gaming", "--scenario", "vr_gaming",
             "--accelerator", "A", "--accelerator", "J"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        cells = document["cells"]
        assert len(cells) == len(document["specs"]) == 4
        fingerprints = {c["fingerprint"] for c in cells}
        assert len(fingerprints) == 4  # every cell is a distinct plan
        for cell in cells:
            assert len(cell["fingerprint"]) == 64
            assert len(cell["workload_fingerprint"]) == 64
            estimate = cell["estimate"]
            assert estimate["expected_requests"] > 0
            assert estimate["est_busy_engine_s"] > 0
            assert estimate["est_energy_mj"] > 0

    def test_faults_bearing_spec_validates_against_schema(self, capsys):
        jsonschema = pytest.importorskip("jsonschema")
        from repro.api import FAULT_PROFILES, RunSpec

        assert main(
            ["sweep", "--dry-run", "--scenario", "vr_gaming",
             "--accelerator", "J", "--faults", "single"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        schema = json.loads(
            (REPO_ROOT / "schema" / "runspec.schema.json").read_text()
        )
        jsonschema.validate(document, schema)
        for spec in document["specs"]:
            assert spec["faults"] == "single"
        # Every registered profile validates; an unknown one must not.
        for profile in FAULT_PROFILES:
            jsonschema.validate(
                {"specs": [RunSpec(
                    scenario="vr_gaming", accelerator="J",
                    faults=profile,
                ).to_dict()]},
                schema,
            )
        bogus = RunSpec(scenario="vr_gaming", accelerator="J").to_dict()
        bogus["faults"] = "bitflip"
        with pytest.raises(jsonschema.ValidationError):
            jsonschema.validate({"specs": [bogus]}, schema)

    def test_sweep_rejects_bad_workers(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--scenario", "vr_gaming", "--workers", "0"])

    def test_sweep_reports_bad_duration_cleanly(self, capsys):
        assert main(
            ["sweep", "--scenario", "vr_gaming", "--duration", "-1"]
        ) == 2
        assert "duration" in capsys.readouterr().err

    def test_suite_reports_bad_duration_cleanly(self, capsys):
        assert main(["suite", "A", "--duration", "-1"]) == 2
        assert "duration" in capsys.readouterr().err

    def test_sweep_execution_error_is_clean(self, capsys):
        # 1001 PEs divide accelerator A's 1-way partition but not J's
        # 2-way one, so the failure happens mid-execution, not at spec
        # construction; it must still exit 2 with a message.
        assert main(
            ["sweep", "--scenario", "vr_gaming",
             "--accelerator", "A", "--accelerator", "J",
             "--pes", "1001", "--duration", "0.5"]
        ) == 2
        assert "not divisible" in capsys.readouterr().err

    def test_sweep_executes_grid(self, capsys):
        assert main(
            ["sweep", "--scenario", "vr_gaming",
             "--accelerator", "A", "--accelerator", "J",
             "--duration", "0.5"]
        ) == 0
        out = capsys.readouterr().out
        assert "vr_gaming" in out
        assert out.count("\n") >= 3  # header + two result rows


class TestDvfsFlag:
    def test_run_with_dvfs_governor(self, capsys):
        assert main(
            ["run", "vr_gaming", "J", "--duration", "0.25",
             "--dvfs", "race_to_idle"]
        ) == 0
        out = capsys.readouterr().out
        assert "dvfs=race_to_idle" not in out  # describe() is internal
        assert "total energy" in out

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "vr_gaming", "J", "--dvfs", "warp"]
            )

    def test_sweep_dry_run_emits_policy(self, capsys):
        assert main(
            ["sweep", "--dry-run", "--scenario", "vr_gaming",
             "--dvfs", "slack"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert all(
            spec["dvfs_policy"] == "slack" for spec in document["specs"]
        )

    def test_suite_accepts_dvfs(self, capsys):
        assert main(
            ["suite", "A", "--duration", "0.2", "--dvfs", "slack"]
        ) == 0
        assert "XRBench SCORE" in capsys.readouterr().out


class TestAdmissionFlag:
    def test_flag_reaches_the_spec(self, capsys):
        assert main(
            ["run", "vr_gaming", "J", "--sessions", "8",
             "--duration", "0.25", "--admission", "shed"]
        ) == 0
        out = capsys.readouterr().out
        assert "8 sessions" in out

    def test_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "vr_gaming", "J", "--admission", "panic"]
            )

    def test_sweep_dry_run_emits_policy(self, capsys):
        assert main(
            ["sweep", "--dry-run", "--scenario", "vr_gaming",
             "--admission", "degrade"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert all(
            spec["admission"] == "degrade" for spec in document["specs"]
        )

    def test_suite_accepts_admission(self, capsys):
        assert main(
            ["suite", "A", "--duration", "0.2", "--admission", "shed"]
        ) == 0
        assert "XRBench SCORE" in capsys.readouterr().out


class TestRecordAndReport:
    def test_record_writes_database(self, tmp_path, capsys):
        db = tmp_path / "runs.jsonl"
        assert main(
            ["run", "vr_gaming", "A", "--duration", "0.25",
             "--record", str(db)]
        ) == 0
        err = capsys.readouterr().err
        assert f"recorded 1 run(s) to {db}" in err
        assert len(db.read_text().splitlines()) == 1

    def test_record_appends_across_invocations(self, tmp_path, capsys):
        db = tmp_path / "runs.jsonl"
        for policy in ("none", "degrade"):
            assert main(
                ["run", "vr_gaming", "J", "--sessions", "4",
                 "--duration", "0.25", "--admission", policy,
                 "--record", str(db)]
            ) == 0
        capsys.readouterr()
        assert len(db.read_text().splitlines()) == 2

    def test_report_renders_recorded_runs(self, tmp_path, capsys):
        db = tmp_path / "runs.jsonl"
        for policy in ("none", "shed"):
            main(["run", "vr_gaming", "J", "--sessions", "4",
                  "--duration", "0.25", "--admission", policy,
                  "--record", str(db)])
        capsys.readouterr()
        assert main(["report", "--runs", str(db)]) == 0
        out = capsys.readouterr().out
        assert "# XRBench run report" in out
        assert "QoE Pareto frontier by admission policy" in out
        assert "vr_gaming[shed]" in out

    def test_report_html_to_file(self, tmp_path, capsys):
        db = tmp_path / "runs.jsonl"
        main(["run", "vr_gaming", "A", "--duration", "0.25",
              "--record", str(db)])
        capsys.readouterr()
        page = tmp_path / "report.html"
        assert main(
            ["report", "--runs", str(db), "--format", "html",
             "--output", str(page)]
        ) == 0
        assert capsys.readouterr().err.strip() == f"wrote {page}"
        assert page.read_text().startswith("<!DOCTYPE html>")

    def test_report_on_missing_database_exits_2(self, tmp_path, capsys):
        assert main(["report", "--runs", str(tmp_path / "nope.jsonl")]) == 2
        assert "no runs recorded" in capsys.readouterr().err

    def test_report_on_corrupt_database_warns_and_skips(self, tmp_path,
                                                        capsys):
        # A fully-corrupt database leaves no runs: warn about the skipped
        # line, then fail with the usual empty-database message.
        db = tmp_path / "runs.jsonl"
        db.write_text("not json\n")
        assert main(["report", "--runs", str(db)]) == 2
        err = capsys.readouterr().err
        assert "skipped 1 malformed line(s) (1)" in err
        assert "no runs recorded" in err

    def test_report_survives_a_crashed_writers_tail(self, tmp_path,
                                                    capsys):
        # A truncated tail (crashed writer) costs only its own line: the
        # intact records still render, with a warning on stderr and a
        # banner in the report body.
        db = tmp_path / "runs.jsonl"
        assert main(
            ["run", "vr_gaming", "A", "--duration", "0.2",
             "--record", str(db)]
        ) == 0
        with db.open("a") as fh:
            fh.write('{"spec": {"trunc')
        capsys.readouterr()
        assert main(["report", "--runs", str(db)]) == 0
        captured = capsys.readouterr()
        assert "skipped 1 malformed line(s) (2)" in captured.err
        assert "XRBench run report" in captured.out
        assert "skipped 1 malformed database line(s)" in captured.out

    def test_export_can_record(self, tmp_path, capsys):
        db = tmp_path / "runs.jsonl"
        assert main(
            ["export", "A", "--duration", "0.2", "--format", "csv",
             "--record", str(db)]
        ) == 0
        captured = capsys.readouterr()
        assert "shed" in captured.out.splitlines()[0]
        record = json.loads(db.read_text())
        assert record["spec"]["suite"] is True


class TestPlanCommand:
    def test_emits_schema_valid_artifact(self, capsys):
        jsonschema = pytest.importorskip("jsonschema")
        assert main(
            ["plan", "vr_gaming", "J", "--duration", "0.25",
             "--sessions", "2", "--granularity", "segment",
             "--faults", "single", "--admission", "shed"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        schema = json.loads(
            (REPO_ROOT / "schema" / "dispatchplan.schema.json").read_text()
        )
        jsonschema.validate(document, schema)
        assert document["mode"] == "sessions"
        assert document["faults"]["profile"] == "single"
        assert document["segment_chains"]

    def test_output_flag_writes_loadable_artifact(self, tmp_path, capsys):
        from repro.api import DispatchPlan

        path = tmp_path / "plan.json"
        assert main(
            ["plan", "ar_gaming", "A", "--duration", "0.25",
             "--output", str(path)]
        ) == 0
        assert "wrote" in capsys.readouterr().err
        plan = DispatchPlan.from_json(path.read_text())
        assert plan.spec.scenario == "ar_gaming"

    def test_spec_file_input(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            RunSpec(scenario="vr_gaming", duration_s=0.25).to_json()
        )
        assert main(["plan", "--spec", str(spec_path)]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["spec"]["scenario"] == "vr_gaming"

    def test_diff_renders_structured_entries(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for path, scheduler in ((a, "latency_greedy"), (b, "edf")):
            assert main(
                ["plan", "vr_gaming", "J", "--duration", "0.25",
                 "--scheduler", scheduler, "--output", str(path)]
            ) == 0
        capsys.readouterr()
        assert main(["plan", "--diff", str(a), str(b), "--json"]) == 0
        entries = json.loads(capsys.readouterr().out)
        assert entries, "scheduler A/B must yield a non-empty diff"
        by_path = {e["path"]: e for e in entries}
        assert by_path["scheduler"]["a"] == "latency_greedy"
        assert by_path["scheduler"]["b"] == "edf"

    def test_diff_of_identical_plans_is_empty(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        assert main(
            ["plan", "vr_gaming", "J", "--duration", "0.25",
             "--output", str(a)]
        ) == 0
        capsys.readouterr()
        assert main(["plan", "--diff", str(a), str(a)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_tampered_artifact_fails_cleanly(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        assert main(
            ["plan", "vr_gaming", "J", "--duration", "0.25",
             "--output", str(a)]
        ) == 0
        data = json.loads(a.read_text())
        data["scheduler"] = "edf"
        a.write_text(json.dumps(data))
        capsys.readouterr()
        assert main(["plan", "--diff", str(a), str(a)]) == 2
        assert "fingerprint mismatch" in capsys.readouterr().err

    def test_missing_positionals_error(self):
        with pytest.raises(SystemExit):
            main(["plan"])


class TestExportFingerprints:
    def test_json_export_stamps_fingerprints(self, capsys):
        assert main(
            ["export", "A", "--duration", "0.2", "--format", "json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert len(document["plan_fingerprint"]) == 64
        assert len(document["workload_fingerprint"]) == 64

    def test_csv_export_stamps_fingerprint_column(self, capsys):
        assert main(
            ["export", "A", "--duration", "0.2", "--format", "csv"]
        ) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0].endswith("plan_fingerprint")
        fingerprints = {line.rsplit(",", 1)[1] for line in lines[1:]}
        assert len(fingerprints) == 1  # one suite run, one plan
        assert len(fingerprints.pop()) == 64

    def test_recorded_runs_group_by_workload(self, tmp_path, capsys):
        db = tmp_path / "runs.jsonl"
        for seed in ("0", "3"):
            assert main(
                ["run", "vr_gaming", "A", "--duration", "0.2",
                 "--seed", seed, "--record", str(db)]
            ) == 0
        capsys.readouterr()
        assert main(["report", "--runs", str(db)]) == 0
        out = capsys.readouterr().out
        assert "Seed replicates by workload fingerprint" in out
        # Both seeds land in one group row listing them.
        assert "| 2 | 0, 3 |" in out
