"""Tests for the xrbench command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(
            ["run", "ar_gaming", "J", "--pes", "8192"]
        )
        assert args.scenario == "ar_gaming"
        assert args.accelerator == "J"
        assert args.pes == 8192

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nope", "J"])

    def test_rejects_unknown_accelerator(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "ar_gaming", "Z"])


class TestCommands:
    def test_run(self, capsys):
        assert main(["run", "vr_gaming", "A", "--duration", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "vr_gaming" in out and "overall=" in out

    def test_run_with_timeline(self, capsys):
        assert main(
            ["run", "vr_gaming", "A", "--duration", "0.5", "--timeline"]
        ) == 0
        assert "ms/char" in capsys.readouterr().out

    def test_run_multi_session(self, capsys):
        assert main(
            ["run", "vr_gaming", "J", "--duration", "0.5", "--sessions", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "3 sessions of vr_gaming" in out
        assert "session 2:" in out
        assert "cost cache" in out

    def test_run_segment_granularity(self, capsys):
        assert main(
            ["run", "ar_gaming", "J", "--duration", "0.5",
             "--granularity", "segment"]
        ) == 0
        out = capsys.readouterr().out
        assert "1 sessions of ar_gaming" in out

    def test_run_rejects_bad_session_count(self, capsys):
        assert main(["run", "vr_gaming", "J", "--sessions", "0"]) == 2

    def test_suite(self, capsys):
        assert main(["suite", "A", "--duration", "0.5"]) == 0
        assert "XRBench SCORE" in capsys.readouterr().out

    def test_tables_all(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        for t in ("Table 1", "Table 2", "Table 3", "Table 5", "Table 7"):
            assert t in out

    def test_tables_single(self, capsys):
        assert main(["tables", "--which", "3"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "Table 5" not in out

    def test_models_single(self, capsys):
        assert main(["models", "--code", "KD"]) == 0
        out = capsys.readouterr().out
        assert "KD" in out and "WS@4096PE" in out

    def test_figure8(self, capsys):
        assert main(["figure8"]) == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_figure6(self, capsys):
        assert main(["figure6", "--duration", "0.5"]) == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_figure7_small(self, capsys):
        assert main(["figure7", "--trials", "2", "--duration", "0.5"]) == 0
        assert "Figure 7" in capsys.readouterr().out

    def test_scheduler_flag(self, capsys):
        assert main(
            ["run", "vr_gaming", "A", "--duration", "0.5",
             "--scheduler", "edf"]
        ) == 0

    def test_rate_monotonic_scheduler_flag(self, capsys):
        assert main(
            ["run", "ar_gaming", "J", "--duration", "0.5",
             "--scheduler", "rate_monotonic"]
        ) == 0

    def test_frame_loss_flag(self, capsys):
        assert main(
            ["run", "vr_gaming", "A", "--duration", "0.5",
             "--frame-loss", "0.3"]
        ) == 0
        out = capsys.readouterr().out
        assert "qoe=" in out

    def test_ablations_quantization(self, capsys):
        assert main(["ablations", "--which", "quantization"]) == 0
        out = capsys.readouterr().out
        assert "int8" in out and "acc_score" in out

    def test_ablations_dvfs(self, capsys):
        assert main(["ablations", "--which", "dvfs"]) == 0
        assert "saving" in capsys.readouterr().out

    def test_stats(self, capsys):
        assert main(
            ["stats", "outdoor_activity_a", "A", "--seeds", "3",
             "--duration", "0.5"]
        ) == 0
        out = capsys.readouterr().out
        assert "95% CI" in out

    def test_export_submission(self, capsys):
        assert main(["export", "A", "--duration", "0.5"]) == 0
        out = capsys.readouterr().out
        assert '"benchmark": "XRBench"' in out
        assert "breakdowns" not in out

    def test_export_submission_with_breakdowns(self, capsys):
        assert main(
            ["export", "A", "--duration", "0.5", "--breakdowns"]
        ) == 0
        assert "breakdowns" in capsys.readouterr().out

    def test_observations(self, capsys):
        assert main(["observations"]) == 0
        out = capsys.readouterr().out
        assert "[HOLDS ]" in out and "[BROKEN]" not in out

    def test_export_csv(self, capsys):
        assert main(
            ["export", "A", "--duration", "0.5", "--format", "csv"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("system,scenario,model")
