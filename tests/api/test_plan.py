"""Tests for the compilation layer: compile_plan -> DispatchPlan.

The tentpole contract: a compiled plan is a frozen, JSON-round-trippable
artifact, ``execute(spec)`` is exactly compile-then-execute, and a plan
that went over the wire (``from_json(to_json())``) replays to identical
per-session results.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    CollectingSink,
    DispatchPlan,
    Experiment,
    RunSpec,
    compile_plan,
    diff_plans,
    estimate_plan,
    execute,
    execute_plan,
    workload_fingerprint,
)
from repro.api.plan import PLAN_VERSION


SHORT = dict(duration_s=0.25)


class TestCompile:
    def test_single_mode_has_one_session_row(self):
        plan = compile_plan(RunSpec(scenario="ar_gaming", **SHORT))
        assert plan.mode == "single"
        (row,) = plan.sessions
        assert row.scenario == "ar_gaming"
        assert row.seed == 0
        assert row.timeline == ((0.0, 0.25, "ar_gaming"),)
        assert plan.segment_chains == ()

    def test_sessions_mode_rows_carry_consecutive_seeds(self):
        plan = compile_plan(RunSpec(
            scenario="vr_gaming", sessions=3, seed=5, **SHORT
        ))
        assert plan.mode == "sessions"
        assert [r.seed for r in plan.sessions] == [5, 6, 7]
        assert [r.session_id for r in plan.sessions] == [0, 1, 2]

    def test_churn_windows_resolved_into_timeline(self):
        plan = compile_plan(RunSpec(
            scenario="vr_gaming", sessions=4, churn=0.3, **SHORT
        ))
        arrivals = [r.arrival_s for r in plan.sessions]
        assert any(a > 0 for a in arrivals)
        for row in plan.sessions:
            ((start, stop, name),) = row.timeline
            assert start == row.arrival_s
            assert stop <= plan.duration_s
            assert name == row.scenario

    def test_suite_mode_plans_every_scenario(self):
        from repro.workload import SCENARIO_ORDER

        plan = compile_plan(RunSpec.for_suite("A", **SHORT))
        assert plan.mode == "suite"
        assert [r.scenario for r in plan.sessions] == list(SCENARIO_ORDER)
        assert all(r.session_id == 0 for r in plan.sessions)

    def test_segment_granularity_records_chain_codes(self):
        plan = compile_plan(RunSpec(
            scenario="vr_gaming", sessions=2, granularity="segment",
            **SHORT
        ))
        chains = plan.chain_codes()
        assert chains, "vr_gaming has splittable models"
        for code, pieces in chains.items():
            assert len(pieces) >= 2
            assert all(code in piece for piece in pieces)

    def test_fault_schedule_is_compiled_in(self):
        plan = compile_plan(RunSpec(
            scenario="vr_gaming", sessions=2, faults="flaky", **SHORT
        ))
        assert plan.faults is not None
        assert plan.faults["profile"] == "flaky"
        assert plan.faults["events"]
        assert plan.fault_plan().profile == "flaky"
        assert plan.dynamic

    def test_admission_ticks_resolved(self):
        plan = compile_plan(RunSpec(
            scenario="vr_gaming", sessions=2, admission="shed", **SHORT
        ))
        assert plan.admission_period_s is not None
        assert plan.control_ticks_s
        assert all(0 < t < plan.duration_s for t in plan.control_ticks_s)

    def test_dvfs_ladder_always_present(self):
        plan = compile_plan(RunSpec(scenario="ar_gaming", **SHORT))
        names = [p["name"] for p in plan.dvfs_ladder]
        assert "nominal" in names and "boost" in names

    def test_compile_is_pure_and_deterministic(self):
        spec = RunSpec(scenario="vr_gaming", sessions=2, churn=0.2,
                       faults="single", **SHORT)
        assert compile_plan(spec) == compile_plan(spec)
        assert compile_plan(spec).fingerprint == compile_plan(spec).fingerprint


class TestFingerprints:
    def test_fingerprint_is_content_addressed(self):
        a = compile_plan(RunSpec(scenario="vr_gaming", **SHORT))
        b = compile_plan(RunSpec(scenario="vr_gaming", scheduler="edf",
                                 **SHORT))
        assert a.fingerprint != b.fingerprint
        assert len(a.fingerprint) == 64

    def test_workload_fingerprint_ignores_seed_only(self):
        base = RunSpec(scenario="vr_gaming", sessions=2, **SHORT)
        assert workload_fingerprint(base) == (
            workload_fingerprint(base.replace(seed=99))
        )
        assert workload_fingerprint(base) != (
            workload_fingerprint(base.replace(scheduler="edf"))
        )

    def test_seed_changes_plan_but_not_workload_fingerprint(self):
        base = RunSpec(scenario="vr_gaming", sessions=2, **SHORT)
        a, b = compile_plan(base), compile_plan(base.replace(seed=99))
        assert a.fingerprint != b.fingerprint
        assert a.workload_fingerprint == b.workload_fingerprint

    def test_reuse_adopts_chains_for_same_workload(self):
        base = RunSpec(scenario="vr_gaming", sessions=2,
                       granularity="segment", **SHORT)
        first = compile_plan(base)
        reused = compile_plan(base.replace(seed=42), reuse=first)
        assert reused.segment_chains == first.segment_chains
        # A different workload must not adopt the cached chains blindly.
        other = compile_plan(
            base.replace(scenario=("ar_gaming",) * 2), reuse=first
        )
        assert other.workload_fingerprint != first.workload_fingerprint


class TestSerialization:
    SPECS = [
        RunSpec(scenario="ar_gaming", **SHORT),
        RunSpec(scenario="vr_gaming", sessions=3, granularity="segment",
                churn=0.3, scheduler="edf", preemptive=True,
                admission="shed", dvfs_policy="slack", faults="flaky",
                **SHORT),
        RunSpec.for_suite("A", faults="thermal", seed=7, **SHORT),
    ]

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.mode)
    def test_json_round_trip_is_lossless(self, spec):
        plan = compile_plan(spec)
        back = DispatchPlan.from_json(plan.to_json())
        assert back == plan
        assert back.fingerprint == plan.fingerprint
        assert back.workload_fingerprint == plan.workload_fingerprint

    def test_tampered_artifact_rejected(self):
        plan = compile_plan(RunSpec(scenario="ar_gaming", **SHORT))
        data = json.loads(plan.to_json())
        data["scheduler"] = "edf"
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            DispatchPlan.from_dict(data)

    def test_unsupported_version_rejected(self):
        plan = compile_plan(RunSpec(scenario="ar_gaming", **SHORT))
        data = plan.to_dict()
        data["version"] = PLAN_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            DispatchPlan.from_dict(data)

    def test_artifact_validates_against_schema(self):
        jsonschema = pytest.importorskip("jsonschema")
        with open("schema/dispatchplan.schema.json",
                  encoding="utf-8") as fh:
            schema = json.load(fh)
        for spec in self.SPECS:
            doc = json.loads(compile_plan(spec).to_json())
            jsonschema.Draft7Validator(schema).validate(doc)


class TestDiff:
    def test_identical_plans_diff_empty(self):
        spec = RunSpec(scenario="vr_gaming", **SHORT)
        assert diff_plans(compile_plan(spec), compile_plan(spec)) == []

    def test_scheduler_ab_yields_structured_entries(self):
        a = compile_plan(RunSpec(scenario="vr_gaming", sessions=2, **SHORT))
        b = compile_plan(RunSpec(scenario="vr_gaming", sessions=2,
                                 scheduler="edf", **SHORT))
        entries = diff_plans(a, b)
        assert entries
        by_path = {e["path"]: e for e in entries}
        assert by_path["scheduler"] == {
            "path": "scheduler", "a": "latency_greedy", "b": "edf",
        }
        assert "fingerprint" in by_path

    def test_unequal_session_counts_summarised(self):
        a = compile_plan(RunSpec(scenario="vr_gaming", sessions=2, **SHORT))
        b = compile_plan(RunSpec(scenario="vr_gaming", sessions=4, **SHORT))
        by_path = {e["path"]: e for e in diff_plans(a, b)}
        assert by_path["sessions"]["a"] == "<2 items>"
        assert by_path["sessions"]["b"] == "<4 items>"


class TestEstimate:
    def test_estimates_are_positive_and_consistent(self, cost_table):
        plan = compile_plan(RunSpec(scenario="vr_gaming", sessions=2,
                                    **SHORT))
        est = estimate_plan(plan, costs=cost_table)
        assert est["sessions"] == 2
        assert est["expected_requests"] > 0
        assert est["est_busy_engine_s"] > 0
        assert est["est_energy_mj"] > 0
        assert est["est_makespan_s"] == pytest.approx(
            est["est_busy_engine_s"] / plan.num_engines
        )

    def test_churned_cell_costs_less_than_static(self, cost_table):
        static = compile_plan(RunSpec(scenario="vr_gaming", sessions=4,
                                      **SHORT))
        churned = compile_plan(RunSpec(scenario="vr_gaming", sessions=4,
                                       churn=0.3, **SHORT))
        assert estimate_plan(churned, costs=cost_table)[
            "expected_requests"
        ] <= estimate_plan(static, costs=cost_table)["expected_requests"]


class TestExecutePlan:
    """execute(spec) == execute_plan over the wire, field for field."""

    @pytest.mark.parametrize("spec", [
        RunSpec(scenario=("vr_gaming",), granularity="segment", **SHORT),
        RunSpec(scenario="vr_gaming", sessions=3, churn=0.3,
                scheduler="edf", **SHORT),
        RunSpec(scenario="vr_gaming", sessions=2, faults="single", **SHORT),
    ], ids=["segment", "churn", "faults"])
    def test_round_tripped_plan_replays_identically(self, spec, cost_table):
        direct = execute(spec, costs=cost_table)
        wire = DispatchPlan.from_json(compile_plan(spec).to_json())
        replayed = execute_plan(wire, costs=cost_table)
        for a, b in zip(direct.result.sessions, replayed.result.sessions):
            assert a.session_id == b.session_id
            assert len(a.requests) == len(b.requests)
            assert a.total_energy_mj() == b.total_energy_mj()
        assert [r.score.overall for r in direct.session_reports] == (
            [r.score.overall for r in replayed.session_reports]
        )

    def test_suite_plan_matches_suite_execute(self, cost_table):
        spec = RunSpec.for_suite("A", **SHORT)
        direct = execute(spec, costs=cost_table)
        replayed = execute_plan(
            DispatchPlan.from_json(compile_plan(spec).to_json()),
            costs=cost_table,
        )
        assert replayed.xrbench_score == direct.xrbench_score

    def test_segment_plan_drift_raises(self, cost_table):
        spec = RunSpec(scenario=("vr_gaming",), granularity="segment",
                       **SHORT)
        plan = compile_plan(spec)
        # Forge a chain table claiming a different piece count.
        code, pieces = plan.segment_chains[0]
        forged = DispatchPlan(
            **{**{f: getattr(plan, f) for f in (
                "spec", "mode", "accelerator", "pes", "num_engines",
                "scheduler", "preemptive", "granularity",
                "segments_per_model", "duration_s", "seed", "frame_loss",
                "score_preset", "churn", "sessions", "faults",
                "admission", "admission_period_s", "control_ticks_s",
                "dvfs_policy", "dvfs_ladder",
            )}, "segment_chains": ((code, pieces + ("bogus",)),)}
        )
        with pytest.raises(ValueError, match="segment plan drift"):
            execute_plan(forged, costs=cost_table)


class TestPlanCache:
    def test_seed_grid_hits_the_cache(self, cost_table):
        from repro.api import Sweep

        sweep = Sweep(
            base=RunSpec(scenario="vr_gaming", sessions=2, **SHORT),
            grid={"seed": (0, 1, 2)},
        )
        sink = CollectingSink()
        experiment = Experiment.from_sweep(sweep)
        experiment.run(sinks=[sink], costs=cost_table)
        (finished,) = [
            e for e in sink.events if e.kind == "experiment_finished"
        ]
        assert finished.payload["plan_cache_hits"] == 2

    def test_distinct_workloads_never_hit(self, cost_table):
        from repro.api import Sweep

        sweep = Sweep(
            base=RunSpec(scenario="vr_gaming", **SHORT),
            grid={"scenario": ("vr_gaming", "ar_gaming")},
        )
        sink = CollectingSink()
        Experiment.from_sweep(sweep).run(sinks=[sink], costs=cost_table)
        (finished,) = [
            e for e in sink.events if e.kind == "experiment_finished"
        ]
        assert finished.payload["plan_cache_hits"] == 0
