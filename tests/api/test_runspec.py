"""Tests for the declarative RunSpec and the execute funnel.

The satellite contract: ``RunSpec -> to_dict -> from_dict -> execute``
is byte-identical in results to direct ``Harness`` calls across all four
schedulers and both granularities.
"""

from __future__ import annotations

import json

import pytest

from repro.api import CollectingSink, RunSpec, execute
from repro.core import Harness, HarnessConfig
from repro.runtime import SCHEDULERS


ALL_SCHEDULERS = sorted(SCHEDULERS)


class TestValidation:
    def test_defaults_build(self):
        spec = RunSpec(scenario="ar_gaming")
        assert spec.mode == "single"
        assert spec.accelerator == "J"

    def test_list_scenario_normalised_to_tuple(self):
        spec = RunSpec(scenario=["vr_gaming", "ar_gaming"])
        assert spec.scenario == ("vr_gaming", "ar_gaming")
        assert spec.sessions == 2
        assert spec.mode == "sessions"

    def test_session_count_contradiction_rejected(self):
        with pytest.raises(ValueError, match="contradicts"):
            RunSpec(scenario=("vr_gaming", "ar_gaming"), sessions=3)

    def test_suite_takes_no_scenario(self):
        with pytest.raises(ValueError, match="suite"):
            RunSpec(scenario="ar_gaming", suite=True)
        assert RunSpec.for_suite("A").mode == "suite"

    def test_scenario_required_without_suite(self):
        with pytest.raises(ValueError, match="scenario"):
            RunSpec()

    def test_unknown_names_raise_with_suggestion(self):
        with pytest.raises(KeyError, match="did you mean 'ar_gaming'"):
            RunSpec(scenario="ar_gamign")
        with pytest.raises(KeyError, match="unknown scheduler"):
            RunSpec(scenario="ar_gaming", scheduler="edff")
        with pytest.raises(KeyError, match="unknown accelerator"):
            RunSpec(scenario="ar_gaming", accelerator="Z")
        with pytest.raises(KeyError, match="unknown score preset"):
            RunSpec(scenario="ar_gaming", score_preset="defualt")

    def test_numeric_validation(self):
        with pytest.raises(ValueError, match="sessions"):
            RunSpec(scenario="ar_gaming", sessions=0)
        with pytest.raises(ValueError, match="duration"):
            RunSpec(scenario="ar_gaming", duration_s=0)
        with pytest.raises(ValueError, match="granularity"):
            RunSpec(scenario="ar_gaming", granularity="layer")
        with pytest.raises(ValueError, match="frame_loss"):
            RunSpec(scenario="ar_gaming", frame_loss=1.0)


class TestSerialization:
    SPECS = [
        RunSpec(scenario="ar_gaming"),
        RunSpec(scenario="vr_gaming", accelerator="A", pes=8192,
                scheduler="edf", seed=7, duration_s=0.5),
        RunSpec(scenario=("vr_gaming", "ar_assistant"),
                granularity="segment", segments_per_model=3),
        RunSpec.for_suite("M", frame_loss=0.1, score_preset="strict_rt"),
    ]

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.mode)
    def test_dict_round_trip(self, spec):
        assert RunSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.mode)
    def test_json_round_trip(self, spec):
        text = spec.to_json()
        assert json.loads(text) == spec.to_dict()
        assert RunSpec.from_json(text) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown RunSpec fields"):
            RunSpec.from_dict({"scenario": "ar_gaming", "warp": 9})

    def test_replace_revalidates(self):
        spec = RunSpec(scenario="ar_gaming")
        with pytest.raises(KeyError, match="unknown scenario"):
            spec.replace(scenario="nope")


class TestExecuteEquivalence:
    """Round-tripped specs reproduce Harness results exactly."""

    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
    def test_single_scenario_matches_harness(
        self, scheduler, cost_table, hda_j_4k
    ):
        spec = RunSpec.from_dict(RunSpec(
            scenario="ar_gaming", accelerator="J",
            scheduler=scheduler, duration_s=0.4, seed=3,
        ).to_dict())
        harness = Harness(
            config=HarnessConfig(duration_s=0.4, scheduler=scheduler),
            costs=cost_table,
        )
        via_spec = execute(spec, costs=cost_table)
        via_harness = harness.run_scenario("ar_gaming", hda_j_4k, seed=3)
        assert via_spec.score.overall == via_harness.score.overall
        assert via_spec.score.rt == via_harness.score.rt
        assert via_spec.score.qoe == via_harness.score.qoe
        assert len(via_spec.simulation.requests) == (
            len(via_harness.simulation.requests)
        )

    @pytest.mark.parametrize("granularity", ["model", "segment"])
    @pytest.mark.parametrize("scheduler", ALL_SCHEDULERS)
    def test_sessions_match_harness(
        self, scheduler, granularity, cost_table, hda_j_4k
    ):
        spec = RunSpec.from_dict(RunSpec(
            scenario="vr_gaming", accelerator="J",
            scheduler=scheduler, duration_s=0.4, sessions=2,
            granularity=granularity,
        ).to_dict())
        harness = Harness(
            config=HarnessConfig(duration_s=0.4, scheduler=scheduler),
            costs=cost_table,
        )
        via_spec = execute(spec, costs=cost_table)
        via_harness = harness.run_sessions(
            "vr_gaming", hda_j_4k, num_sessions=2, granularity=granularity
        )
        assert [r.score.overall for r in via_spec.session_reports] == (
            [r.score.overall for r in via_harness.session_reports]
        )
        assert via_spec.result.busy_time_s == via_harness.result.busy_time_s

    def test_suite_matches_harness(self, cost_table, fda_ws_4k):
        spec = RunSpec.from_json(
            RunSpec.for_suite("A", duration_s=0.4).to_json()
        )
        harness = Harness(
            config=HarnessConfig(duration_s=0.4), costs=cost_table
        )
        via_spec = execute(spec, costs=cost_table)
        via_harness = harness.run_suite(fda_ws_4k)
        assert via_spec.xrbench_score == via_harness.xrbench_score
        assert [r.overall for r in via_spec.scenario_reports] == (
            [r.overall for r in via_harness.scenario_reports]
        )

    def test_same_spec_is_deterministic(self, cost_table):
        spec = RunSpec(scenario="outdoor_activity_a", accelerator="A",
                       duration_s=0.4, seed=11)
        a = execute(spec, costs=cost_table)
        b = execute(spec, costs=cost_table)
        assert a.score.overall == b.score.overall


class TestExecuteRouting:
    def test_single_returns_scenario_report(self, cost_table):
        spec = RunSpec(scenario="ar_gaming", accelerator="A",
                       duration_s=0.4)
        report = execute(spec, costs=cost_table)
        assert report.simulation.scenario.name == "ar_gaming"

    def test_segment_granularity_routes_to_sessions(self, cost_table):
        spec = RunSpec(scenario="ar_gaming", accelerator="J",
                       duration_s=0.4, granularity="segment")
        report = execute(spec, costs=cost_table)
        assert report.result.num_sessions == 1

    def test_score_preset_is_applied(self, cost_table):
        base = RunSpec(scenario="ar_gaming", accelerator="A",
                       duration_s=0.4)
        default = execute(base, costs=cost_table)
        lenient = execute(
            base.replace(score_preset="lenient_rt"), costs=cost_table
        )
        # A different sigmoid steepness must change the RT score, and
        # only the scoring — the simulation itself is untouched.
        assert lenient.score.rt != default.score.rt
        assert len(lenient.simulation.requests) == (
            len(default.simulation.requests)
        )

    def test_events_are_emitted(self, cost_table):
        sink = CollectingSink()
        execute(RunSpec.for_suite("A", duration_s=0.4),
                costs=cost_table, sinks=[sink])
        kinds = sink.kinds()
        assert kinds[0] == "spec_started"
        assert kinds[-1] == "spec_finished"
        assert kinds.count("scenario_finished") == 7
        finished = [e for e in sink.events if e.kind == "scenario_finished"]
        assert finished[0].payload["scenario"] == "social_interaction_a"
        assert "overall" in finished[0].payload


class TestDvfsPolicyField:
    def test_default_is_static(self):
        spec = RunSpec(scenario="ar_gaming")
        assert spec.dvfs_policy == "static"
        assert spec.mode == "single"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="dvfs_policy"):
            RunSpec(scenario="ar_gaming", dvfs_policy="overclock")

    def test_governed_spec_routes_to_sessions(self):
        spec = RunSpec(scenario="ar_gaming", dvfs_policy="slack")
        assert spec.mode == "sessions"
        assert "dvfs=slack" in spec.describe()

    def test_governed_suite_stays_suite_mode(self):
        spec = RunSpec.for_suite("J", dvfs_policy="race_to_idle")
        assert spec.mode == "suite"

    def test_round_trips(self):
        spec = RunSpec(scenario="vr_gaming", dvfs_policy="slack",
                       granularity="segment", sessions=2)
        assert RunSpec.from_dict(spec.to_dict()) == spec
        assert RunSpec.from_json(spec.to_json()) == spec
        assert spec.to_dict()["dvfs_policy"] == "slack"

    def test_governed_execution_reports_energy(self):
        from repro.api import execute

        spec = RunSpec(scenario=("vr_gaming",), accelerator="A",
                       duration_s=0.25, dvfs_policy="race_to_idle")
        report = execute(spec)
        result = report.result
        assert result.total_energy_mj() > 0
        assert {r.dvfs for r in result.records} == {"boost"}

    def test_sweep_can_grid_the_policy(self):
        from repro.api import Sweep

        sweep = Sweep(
            base=RunSpec(scenario="vr_gaming"),
            grid={"dvfs_policy": ("static", "slack")},
        )
        policies = [s.dvfs_policy for s in sweep.expand()]
        assert policies == ["static", "slack"]


class TestAdmissionField:
    def test_default_is_none_and_single_mode(self):
        spec = RunSpec(scenario="ar_gaming")
        assert spec.admission == "none"
        assert spec.mode == "single"
        assert "admission=" not in spec.describe()

    def test_policies_constant_exported(self):
        from repro.api import ADMISSION_POLICIES

        assert ADMISSION_POLICIES == ("none", "shed", "degrade")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="admission"):
            RunSpec(scenario="ar_gaming", admission="panic")

    def test_controlled_spec_routes_to_sessions(self):
        spec = RunSpec(scenario="ar_gaming", admission="shed")
        assert spec.mode == "sessions"
        assert "admission=shed" in spec.describe()

    def test_controlled_suite_stays_suite_mode(self):
        spec = RunSpec.for_suite("J", admission="degrade")
        assert spec.mode == "suite"

    def test_round_trips(self):
        spec = RunSpec(scenario="vr_gaming", admission="degrade",
                       sessions=4)
        assert RunSpec.from_dict(spec.to_dict()) == spec
        assert RunSpec.from_json(spec.to_json()) == spec
        assert spec.to_dict()["admission"] == "degrade"

    def test_controlled_execution_stamps_records(self, cost_table):
        from repro.api import execute

        spec = RunSpec(scenario="vr_gaming", accelerator="J", pes=4096,
                       sessions=8, duration_s=0.25, admission="shed")
        report = execute(spec, costs=cost_table)
        records = [s.admission for s in report.result.sessions]
        assert all(r is not None and r.policy == "shed" for r in records)

    def test_sweep_can_grid_the_policy(self):
        from repro.api import Sweep

        sweep = Sweep(
            base=RunSpec(scenario="vr_gaming", sessions=4),
            grid={"admission": ("none", "shed", "degrade")},
        )
        assert [s.admission for s in sweep.expand()] == [
            "none", "shed", "degrade",
        ]


class TestFieldDrift:
    """New-field drift canaries: serialization must cover every field.

    When a field is added to RunSpec but forgotten in to_dict/from_dict
    (or in these fixtures), the round-trip and key-set assertions here
    fail loudly instead of the field silently vanishing over the wire.
    """

    #: Every RunSpec field set to a non-default value — from_dict
    #: dropping any one of them breaks equality.
    FULL = RunSpec(
        scenario=("vr_gaming", "ar_gaming", "ar_assistant"),
        accelerator="H",
        pes=8192,
        scheduler="edf",
        granularity="segment",
        segments_per_model=3,
        duration_s=0.5,
        seed=11,
        frame_loss=0.05,
        score_preset="strict_rt",
        churn=0.3,
        preemptive=True,
        dvfs_policy="slack",
        admission="degrade",
        faults="flaky",
    )

    def test_every_dataclass_field_is_serialized(self):
        import dataclasses

        field_names = {f.name for f in dataclasses.fields(RunSpec)}
        assert set(self.FULL.to_dict()) == field_names

    def test_full_spec_round_trips(self):
        spec = self.FULL
        assert RunSpec.from_dict(spec.to_dict()) == spec
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_replace_round_trips_dynamics_fields(self):
        base = RunSpec(scenario="vr_gaming", sessions=2)
        spec = base.replace(admission="shed", faults="single",
                            dvfs_policy="race_to_idle", seed=9)
        assert spec.admission == "shed"
        assert spec.faults == "single"
        assert spec.seed == 9
        assert RunSpec.from_dict(spec.to_dict()) == spec
        # replace() leaves the original untouched (frozen value type).
        assert base.admission == "none" and base.faults == "none"

    def test_faults_round_trip(self):
        spec = RunSpec(scenario="vr_gaming", sessions=2, faults="thermal")
        assert spec.to_dict()["faults"] == "thermal"
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_fault_seed_is_not_a_field(self):
        # The fault timeline is seeded by `seed`; a separate fault_seed
        # key must be rejected, not silently dropped.
        with pytest.raises(ValueError, match="unknown RunSpec fields"):
            RunSpec.from_dict(
                {"scenario": "ar_gaming", "fault_seed": 1}
            )
