"""Tests for Sweep expansion and Experiment execution (serial + pool)."""

from __future__ import annotations

import pytest

from repro.api import (
    CollectingSink,
    Experiment,
    RunSpec,
    Sweep,
    execute,
)

BASE = RunSpec(scenario="ar_gaming", accelerator="A", duration_s=0.4)


class TestSweep:
    def test_cartesian_expansion_order(self):
        sweep = Sweep(
            base=BASE,
            grid={"scenario": ("ar_gaming", "vr_gaming"),
                  "accelerator": ("A", "J")},
        )
        assert len(sweep) == 4
        cells = [(s.scenario, s.accelerator) for s in sweep.expand()]
        # Last grid field varies fastest (itertools.product order).
        assert cells == [
            ("ar_gaming", "A"), ("ar_gaming", "J"),
            ("vr_gaming", "A"), ("vr_gaming", "J"),
        ]

    def test_empty_grid_yields_base(self):
        assert Sweep(base=BASE).expand() == [BASE]

    def test_unknown_grid_field_rejected(self):
        with pytest.raises(ValueError, match="not a RunSpec field"):
            Sweep(base=BASE, grid={"warp": (1, 2)})

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            Sweep(base=BASE, grid={"accelerator": ()})

    def test_expansion_validates_names(self):
        sweep = Sweep(base=BASE, grid={"accelerator": ("A", "Z")})
        with pytest.raises(KeyError, match="unknown accelerator"):
            sweep.expand()

    def test_json_round_trip(self):
        sweep = Sweep(
            base=BASE,
            grid={"accelerator": ("A", "J"), "seed": (0, 1, 2)},
        )
        clone = Sweep.from_json(sweep.to_json())
        assert clone == sweep
        assert clone.expand() == sweep.expand()


class TestSweepDeduplication:
    """Overlapping axis values must not silently duplicate work."""

    def test_repeated_axis_values_deduplicated_with_warning(self):
        sweep = Sweep(
            base=BASE,
            grid={"accelerator": ("A", "J", "A"), "seed": (0, 0)},
        )
        assert len(sweep) == 6  # raw grid points, pre-dedup
        with pytest.warns(UserWarning, match="overlapping axis values"):
            specs = sweep.expand()
        assert len(specs) == 2
        assert [s.accelerator for s in specs] == ["A", "J"]
        assert len(set(specs)) == len(specs)

    def test_first_occurrence_order_is_kept(self):
        sweep = Sweep(
            base=BASE,
            grid={"scenario": ("vr_gaming", "ar_gaming", "vr_gaming")},
        )
        with pytest.warns(UserWarning, match="dropped 1 duplicate"):
            specs = sweep.expand()
        assert [s.scenario for s in specs] == ["vr_gaming", "ar_gaming"]

    def test_distinct_grid_warns_nothing(self):
        import warnings

        sweep = Sweep(base=BASE, grid={"seed": (0, 1, 2)})
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            specs = sweep.expand()
        assert len(specs) == 3


class TestExperiment:
    def test_from_sweep_preserves_order(self):
        sweep = Sweep(base=BASE, grid={"accelerator": ("A", "J")})
        experiment = Experiment.from_sweep(sweep, name="x")
        assert len(experiment) == 2
        assert [s.accelerator for s in experiment.specs] == ["A", "J"]

    def test_serial_run_shares_cost_cache(self, cost_table):
        sweep = Sweep(base=BASE, grid={"seed": (0, 1)})
        reports = Experiment.from_sweep(sweep).run(costs=cost_table)
        assert len(reports) == 2
        for report in reports:
            assert 0.0 <= report.score.overall <= 1.0

    def test_workers_match_serial(self, cost_table):
        """Acceptance: 2 scenarios x 2 accelerators, workers=2 == serial."""
        sweep = Sweep(
            base=BASE,
            grid={"scenario": ("ar_gaming", "vr_gaming"),
                  "accelerator": ("A", "J")},
        )
        experiment = Experiment.from_sweep(sweep)
        serial = experiment.run(costs=cost_table)
        # The caller-supplied table must be forwarded to the workers.
        pooled = experiment.run(workers=2, costs=cost_table)
        assert [r.score.overall for r in serial] == (
            [r.score.overall for r in pooled]
        )
        assert [r.score.rt for r in serial] == [r.score.rt for r in pooled]
        assert [len(r.simulation.requests) for r in serial] == (
            [len(r.simulation.requests) for r in pooled]
        )

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="workers"):
            Experiment(specs=(BASE,)).run(workers=0)

    def test_pool_event_stream_matches_serial_shape(self, cost_table):
        sweep = Sweep(base=BASE, grid={"seed": (0, 1)})
        experiment = Experiment.from_sweep(sweep)
        serial_sink, pool_sink = CollectingSink(), CollectingSink()
        experiment.run(sinks=[serial_sink], costs=cost_table)
        experiment.run(workers=2, sinks=[pool_sink], costs=cost_table)
        pool_kinds = pool_sink.kinds()
        assert pool_kinds.count("spec_started") == 2
        assert pool_kinds.count("spec_finished") == 2
        serial_overall = [
            e.payload["overall"] for e in serial_sink.events
            if e.kind == "spec_finished"
        ]
        pool_overall = [
            e.payload["overall"] for e in pool_sink.events
            if e.kind == "spec_finished"
        ]
        assert serial_overall == pool_overall

    def test_events_cover_every_spec(self, cost_table):
        sink = CollectingSink()
        sweep = Sweep(base=BASE, grid={"seed": (0, 1, 2)})
        Experiment.from_sweep(sweep, name="evt").run(
            sinks=[sink], costs=cost_table
        )
        kinds = sink.kinds()
        assert kinds[0] == "experiment_started"
        assert kinds[-1] == "experiment_finished"
        assert kinds.count("spec_started") == 3
        assert kinds.count("spec_finished") == 3
        finished = [e for e in sink.events if e.kind == "spec_finished"]
        assert [e.index for e in finished] == [0, 1, 2]
        assert all(e.total == 3 for e in finished)

    def test_dict_round_trip(self):
        experiment = Experiment(
            name="rt", specs=(BASE, BASE.replace(accelerator="J"))
        )
        assert Experiment.from_dict(experiment.to_dict()) == experiment


class TestWorkerDeathRetry:
    """A pool worker dying (BrokenProcessPool) retries the cell serially."""

    class _DeadFuture:
        def result(self):
            from concurrent.futures.process import BrokenProcessPool

            raise BrokenProcessPool("worker died")

    def test_dead_worker_cell_retried_serially(self, cost_table):
        from repro.api.execute import _pooled_result

        spec = BASE
        sink = CollectingSink()
        report, retries = _pooled_result(
            spec, self._DeadFuture(), cost_table, [sink], 0, 1
        )
        assert retries == 1
        assert 0.0 <= report.score.overall <= 1.0
        (event,) = [e for e in sink.events if e.kind == "spec_retried"]
        assert event.payload["attempt"] == 1
        assert event.payload["error"] == "BrokenProcessPool"

    def test_retry_budget_exhaustion_fails_the_sweep(self, monkeypatch,
                                                     cost_table):
        import importlib
        from concurrent.futures.process import BrokenProcessPool

        execute_module = importlib.import_module("repro.api.execute")

        def always_broken(spec, **kwargs):
            raise BrokenProcessPool("still dead")

        monkeypatch.setattr(execute_module, "execute", always_broken)
        sink = CollectingSink()
        with pytest.raises(RuntimeError, match="worker process died"):
            execute_module._pooled_result(
                BASE, self._DeadFuture(), cost_table, [sink], 0, 1
            )
        retried = [e for e in sink.events if e.kind == "spec_retried"]
        assert [e.payload["attempt"] for e in retried] == [1, 2]

    def test_pooled_run_notes_retried_cells(self, monkeypatch, cost_table):
        """End to end: one worker dies, the sweep still completes and the
        experiment_finished event names the retried cell."""
        import importlib

        execute_module = importlib.import_module("repro.api.execute")

        class _FakePool:
            def __init__(self, max_workers=None):
                self.calls = 0

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, fn, spec_dict, costs):
                self.calls += 1
                if self.calls == 1:
                    return TestWorkerDeathRetry._DeadFuture()

                class _Lazy:
                    def result(_self):
                        return fn(spec_dict, costs)

                return _Lazy()

        monkeypatch.setattr(execute_module, "ProcessPoolExecutor",
                            _FakePool)
        sink = CollectingSink()
        sweep = Sweep(base=BASE, grid={"seed": (0, 1)})
        reports = Experiment.from_sweep(sweep).run(
            workers=2, sinks=[sink], costs=cost_table
        )
        assert len(reports) == 2
        (finished,) = [
            e for e in sink.events if e.kind == "experiment_finished"
        ]
        assert finished.payload["retried"] == [
            sweep.expand()[0].describe()
        ]
        assert sink.kinds().count("spec_retried") == 1


class TestSharedCostTable:
    def test_experiment_reuses_analysis_across_specs(self, cost_table):
        """The serial path's shared cache sees hits from the second spec on."""
        sink = CollectingSink()
        sweep = Sweep(base=BASE, grid={"seed": (0, 1)})
        reports = Experiment.from_sweep(sweep).run(
            sinks=[sink], costs=cost_table
        )
        # Same workload twice: results identical seeds aside, and the
        # funnel produced both through one execute() code path.
        assert reports[0].simulation.scenario.name == (
            reports[1].simulation.scenario.name
        )

    def test_execute_accepts_dispatch_costs_override(self, cost_table):
        from repro.costmodel import UncachedCostTable

        spec = RunSpec(scenario="vr_gaming", accelerator="J",
                       duration_s=0.4, sessions=2)
        table = UncachedCostTable()
        report = execute(spec, dispatch_costs=table)
        assert report.result.cost_stats is None
        assert table.queries > 0
