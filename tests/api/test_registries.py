"""Tests for the unified registry subsystem (repro.registry)."""

from __future__ import annotations

import pytest

from repro import registry
from repro.registry import Registry
from repro.hardware import build_accelerator, register_accelerator
from repro.runtime import make_scheduler, register_scheduler
from repro.workload import get_scenario, register_scenario


class TestRegistryCore:
    def test_register_get_roundtrip(self):
        reg = Registry("widget")
        reg.register("a", 1)
        assert reg.get("a") == 1
        assert "a" in reg and len(reg) == 1
        assert reg.names() == ("a",)

    def test_decorator_form(self):
        reg = Registry("widget")

        @reg.register("fn")
        def fn():
            return 42

        assert reg.get("fn") is fn

    def test_duplicate_rejected_unless_overwrite(self):
        reg = Registry("widget")
        reg.register("a", 1)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("a", 2)
        reg.register("a", 2, overwrite=True)
        assert reg.get("a") == 2

    def test_unknown_lists_names_and_suggests(self):
        reg = Registry("widget")
        reg.register("alpha", 1)
        reg.register("beta", 2)
        with pytest.raises(KeyError) as exc:
            reg.get("alpah")
        message = str(exc.value)
        assert "unknown widget 'alpah'" in message
        assert "'alpha'" in message and "'beta'" in message
        assert "did you mean 'alpha'?" in message

    def test_no_suggestion_when_nothing_close(self):
        reg = Registry("widget")
        reg.register("alpha", 1)
        with pytest.raises(KeyError) as exc:
            reg.get("zzzzzz")
        assert "did you mean" not in str(exc.value)

    def test_unregister(self):
        reg = Registry("widget")
        reg.register("a", 1)
        assert reg.unregister("a") == 1
        with pytest.raises(KeyError, match="unknown widget"):
            reg.unregister("a")


class TestDomainRegistries:
    def test_all_registries_enumerates_four(self):
        kinds = set(registry.all_registries())
        assert kinds == {
            "scenario", "scheduler", "accelerator", "score preset"
        }

    def test_builtins_present(self):
        assert "ar_gaming" in registry.scenarios
        assert "latency_greedy" in registry.schedulers
        assert "J" in registry.accelerators
        assert "default" in registry.score_presets

    def test_scenario_suggestion(self):
        with pytest.raises(KeyError, match="did you mean 'vr_gaming'"):
            get_scenario("vr_gamign")

    def test_scheduler_suggestion(self):
        with pytest.raises(KeyError, match="did you mean 'edf'"):
            make_scheduler("edff")

    def test_accelerator_suggestion(self):
        with pytest.raises(KeyError, match="did you mean 'J'"):
            build_accelerator("j")


class TestThirdPartyRegistration:
    def test_registered_scenario_resolves_everywhere(self):
        from dataclasses import replace

        base = get_scenario("ar_gaming")
        custom = replace(base, name="custom_gaming")
        register_scenario(custom)
        try:
            assert get_scenario("custom_gaming") is custom
            # And it is addressable from a serializable spec.
            from repro.api import RunSpec

            spec = RunSpec(scenario="custom_gaming", duration_s=0.4)
            assert spec.scenario == "custom_gaming"
        finally:
            registry.scenarios.unregister("custom_gaming")

    def test_registered_scheduler_constructible_by_name(self):
        from repro.runtime import LatencyGreedyScheduler

        @register_scheduler("test_greedy")
        class TestGreedy(LatencyGreedyScheduler):
            pass

        try:
            assert isinstance(make_scheduler("test_greedy"), TestGreedy)
        finally:
            registry.schedulers.unregister("test_greedy")

    def test_registered_accelerator_buildable(self):
        base_factory = registry.accelerators.get("J")

        register_accelerator("J2", base_factory)
        try:
            system = build_accelerator("J2", 4096)
            assert system.total_pes == 4096
        finally:
            registry.accelerators.unregister("J2")

    def test_score_preset_registrable(self):
        from repro.core import ScoreConfig, get_score_preset
        from repro.core import register_score_preset

        register_score_preset("test_k20", ScoreConfig(rt_k=20.0))
        try:
            assert get_score_preset("test_k20").rt_k == 20.0
        finally:
            registry.score_presets.unregister("test_k20")
