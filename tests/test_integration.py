"""End-to-end integration tests: the paper's headline claims.

These tie the whole stack together — zoo -> cost model -> hardware ->
runtime -> scoring — and assert the qualitative *shapes* of the paper's
evaluation (Sections 4.2-4.4), which this reproduction targets.
"""

from __future__ import annotations

import pytest

from repro import Harness, build_accelerator
from repro.workload import SCENARIO_ORDER


@pytest.fixture(scope="module")
def harness(cost_table):
    return Harness(costs=cost_table)


@pytest.fixture(scope="module")
def sweep(harness):
    """Overall scores for all 13 accelerators x 7 scenarios x 2 budgets."""
    out: dict[tuple[str, int, str], float] = {}
    for pes in (4096, 8192):
        for acc in "ABCDEFGHIJKLM":
            system = build_accelerator(acc, pes)
            for scenario in SCENARIO_ORDER:
                report = harness.run_scenario(scenario, system)
                out[(acc, pes, scenario)] = report.score.overall
    return out


class TestSection422_OverallScoreNecessary:
    """4.2: single metrics mislead; the overall score composes them."""

    def test_4k_j_ar_gaming_fails(self, harness):
        report = harness.run_scenario("ar_gaming", build_accelerator("J", 4096))
        s = report.score
        # Heavy drops, deep deadline violations, low overall (paper: 0).
        assert report.simulation.frame_drop_rate() > 0.25
        assert s.rt < 0.45
        assert s.overall < 0.35

    def test_8k_j_ar_gaming_works(self, harness):
        report = harness.run_scenario("ar_gaming", build_accelerator("J", 8192))
        s = report.score
        # Few/no drops; PD still misses its deadline (paper RT 0.68).
        assert report.simulation.frame_drop_rate() < 0.15
        assert s.qoe > 0.9
        assert s.model("PD").mean_unit("rt") < 0.1
        assert s.overall > 0.3

    def test_high_rt_does_not_imply_high_overall(self, sweep, harness):
        # An accelerator can ace real-time yet lose on energy/QoE: compare
        # per-unit breakdowns on a light scenario.
        report = harness.run_scenario(
            "outdoor_activity_a", build_accelerator("A", 8192)
        )
        s = report.score
        assert s.rt > 0.95
        assert s.overall < s.rt  # energy multiplies in


class TestSection422_UtilizationWrongMetric:
    def test_utilization_anticorrelates_with_experience(self, harness):
        small = harness.run_scenario("ar_gaming", build_accelerator("J", 4096))
        big = harness.run_scenario("ar_gaming", build_accelerator("J", 8192))
        # The busier system delivers the worse experience.
        assert small.simulation.mean_utilization() >= (
            big.simulation.mean_utilization() - 0.02
        )
        assert small.score.overall < big.score.overall

    def test_pd_starves_on_4k(self, harness):
        report = harness.run_scenario("ar_gaming", build_accelerator("J", 4096))
        pd = report.score.model("PD")
        assert pd.qoe < 0.75  # paper: PD QoE collapses on the 4K system


class TestSection43_ScenarioDiversity:
    def test_different_scenarios_prefer_different_accelerators(self, sweep):
        # Observation 1: the best style differs across workloads.
        winners = set()
        for scenario in SCENARIO_ORDER:
            best = max("ABCDEFGHIJKLM",
                       key=lambda a: sweep[(a, 4096, scenario)])
            winners.add(best)
        assert len(winners) >= 3

    def test_quads_collapse_on_eye_scenarios_at_4k(self, sweep):
        # 1K-PE engines cannot hold the 60 FPS eye pipeline.
        for quad in "GHI":
            assert sweep[(quad, 4096, "vr_gaming")] < 0.35
        assert sweep[("A", 4096, "vr_gaming")] > 0.7

    def test_scenarios_recover_at_8k(self, sweep):
        for scenario in SCENARIO_ORDER:
            for acc in "ABCDEFGHIJKLM":
                assert (
                    sweep[(acc, 8192, scenario)]
                    >= sweep[(acc, 4096, scenario)] - 0.12
                )


class TestSection44_Observations:
    def test_obs2_winner_changes_with_chip_size(self, sweep):
        # Observation 2: optimal styles depend on the PE budget for at
        # least one scenario.
        changed = [
            scenario
            for scenario in SCENARIO_ORDER
            if max("ABCDEFGHIJKLM", key=lambda a: sweep[(a, 4096, scenario)])
            != max("ABCDEFGHIJKLM", key=lambda a: sweep[(a, 8192, scenario)])
        ]
        assert changed

    def test_obs3_multi_acc_wins_many_model_scenario(self, sweep):
        # AR assistant (6 models): some multi-accelerator style beats the
        # single-engine FDA of the same dataflow family.
        assert sweep[("I", 4096, "ar_assistant")] > sweep[("C", 4096, "ar_assistant")] - 0.02
        best_multi = max(sweep[(a, 4096, "ar_assistant")] for a in "DEFGHIJKLM")
        best_fda = max(sweep[(a, 4096, "ar_assistant")] for a in "ABC")
        assert best_multi >= best_fda - 0.01

    def test_obs3_fda_wins_few_model_scenario(self, sweep):
        # VR gaming (3 models): the monolithic FDA A tops the quads.
        a = sweep[("A", 4096, "vr_gaming")]
        for quad in "GHIM":
            assert a > sweep[(quad, 4096, "vr_gaming")]


class TestSuiteLevel:
    def test_xrbench_score_reproducible(self, harness):
        system = build_accelerator("J", 8192)
        a = harness.run_suite(system).xrbench_score
        b = harness.run_suite(system).xrbench_score
        assert a == pytest.approx(b)

    def test_8k_beats_4k_overall(self, harness):
        for acc in ("A", "J", "M"):
            small = harness.run_suite(build_accelerator(acc, 4096))
            big = harness.run_suite(build_accelerator(acc, 8192))
            assert big.xrbench_score >= small.xrbench_score - 0.02

    def test_all_scores_in_unit_interval(self, sweep):
        assert all(0.0 <= v <= 1.0 for v in sweep.values())


class TestSchedulerAblation:
    """The scheduler is a first-class knob (Section 3.5)."""

    def test_edf_competitive_with_greedy(self, cost_table):
        from repro.core import HarnessConfig

        results = {}
        for sched in ("latency_greedy", "edf", "round_robin"):
            h = Harness(
                config=HarnessConfig(scheduler=sched), costs=cost_table
            )
            results[sched] = h.run_scenario(
                "ar_gaming", build_accelerator("J", 8192)
            ).score.overall
        assert results["edf"] > 0.2
        # Round-robin ignores engine fit on the heterogeneous system.
        assert results["round_robin"] <= max(
            results["latency_greedy"], results["edf"]
        ) + 0.02
