"""Hypothesis property tests over the core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import energy_score, qoe_score, realtime_score
from repro.core.aggregate import InferenceScore, ModelScore, ScenarioScore
from repro.costmodel import CostModel, Dataflow
from repro.nn import GraphBuilder, GraphExecutor
from repro.runtime import PendingQueue
from repro.workload import InferenceRequest


# -- random small CNNs -------------------------------------------------------

@st.composite
def small_cnn(draw):
    """A random but always-valid small CNN graph."""
    cin = draw(st.integers(1, 4))
    hw = draw(st.sampled_from([8, 16]))
    b = GraphBuilder("rand", (cin, hw, hw))
    n_layers = draw(st.integers(1, 5))
    for _ in range(n_layers):
        kind = draw(st.sampled_from(["conv", "dw", "pool"]))
        if kind == "conv":
            b.conv(draw(st.sampled_from([4, 8, 16])), 3)
        elif kind == "dw":
            b.dwconv(3)
        elif b.shape[1] >= 4:
            b.pool(2)
        else:
            b.conv(8, 1)
    return b.build()


class TestGraphProperties:
    @settings(max_examples=40, deadline=None)
    @given(graph=small_cnn())
    def test_totals_consistent(self, graph):
        assert graph.total_macs == sum(layer.macs for layer in graph.layers)
        assert graph.total_params >= 0

    @settings(max_examples=20, deadline=None)
    @given(graph=small_cnn(), seed=st.integers(0, 100))
    def test_executor_matches_specs(self, graph, seed):
        out = GraphExecutor(graph, seed=seed).run()
        assert out.shape == graph.out_shape
        assert np.isfinite(out).all()

    @settings(max_examples=20, deadline=None)
    @given(graph=small_cnn(), df=st.sampled_from(list(Dataflow)),
           pes=st.sampled_from([256, 4096]))
    def test_cost_model_total_positive(self, graph, df, pes):
        cost = CostModel(dataflow=df, num_pes=pes).model_cost(graph)
        assert cost.latency_s > 0
        assert cost.energy_mj > 0
        assert 0 <= cost.utilization <= 1


class TestScoreProperties:
    @given(
        lat=st.floats(0, 1e3), slack=st.floats(-1e3, 1e3),
        extra=st.floats(0.001, 100),
    )
    def test_rt_monotone_in_lateness(self, lat, slack, extra):
        assert realtime_score(lat + extra, slack) <= (
            realtime_score(lat, slack) + 1e-12
        )

    @given(e1=st.floats(0, 1e5), e2=st.floats(0, 1e5))
    def test_energy_monotone(self, e1, e2):
        lo, hi = min(e1, e2), max(e1, e2)
        assert energy_score(hi) <= energy_score(lo) + 1e-12

    @given(
        executed=st.integers(0, 1000),
        extra=st.integers(0, 1000),
    )
    def test_qoe_in_unit_interval(self, executed, extra):
        assert 0.0 <= qoe_score(executed, executed + extra) <= 1.0


def _scored_request(code: str, frame: int) -> InferenceScore:
    r = InferenceRequest(code, frame, 0.0, 0.033)
    r.start_time_s = 0.0
    r.end_time_s = 0.01
    r.energy_mj = 10.0
    return InferenceScore(r, rt=0.9, energy=0.8, accuracy=1.0)


class TestAggregationProperties:
    @given(
        n_models=st.integers(1, 5),
        executed=st.lists(st.integers(0, 20), min_size=5, max_size=5),
        dropped=st.lists(st.integers(0, 20), min_size=5, max_size=5),
    )
    def test_scenario_score_bounded(self, n_models, executed, dropped):
        models = []
        for i in range(n_models):
            scores = tuple(
                _scored_request(f"M{i}", f) for f in range(executed[i])
            )
            models.append(
                ModelScore(
                    model_code=f"M{i}", inference_scores=scores,
                    frames_streamed=executed[i] + dropped[i],
                    frames_executed=executed[i],
                    frames_dropped=dropped[i], missed_deadlines=0,
                )
            )
        s = ScenarioScore("prop", tuple(models))
        assert 0.0 <= s.overall <= 1.0
        assert 0.0 <= s.qoe <= 1.0

    @given(st.data())
    def test_dropping_frames_never_raises_score(self, data):
        executed = data.draw(st.integers(1, 10))
        extra_drops = data.draw(st.integers(0, 10))
        scores = tuple(_scored_request("M", f) for f in range(executed))
        base = ModelScore("M", scores, frames_streamed=executed,
                          frames_executed=executed, frames_dropped=0,
                          missed_deadlines=0)
        worse = ModelScore("M", scores,
                           frames_streamed=executed + extra_drops,
                           frames_executed=executed,
                           frames_dropped=extra_drops, missed_deadlines=0)
        assert worse.contribution <= base.contribution + 1e-12


class TestRandomScenarioSimulation:
    """Whole-runtime invariants under randomised workload variants."""

    @settings(max_examples=15, deadline=None)
    @given(
        base=st.sampled_from(
            ["vr_gaming", "social_interaction_a", "outdoor_activity_b"]
        ),
        rate_factor=st.sampled_from([0.5, 1.0, 2.0]),
        acc=st.sampled_from(["A", "J", "H"]),
        pes=st.sampled_from([4096, 8192]),
        loss=st.sampled_from([0.0, 0.2]),
        seed=st.integers(0, 50),
    )
    def test_invariants_hold(self, base, rate_factor, acc, pes, loss, seed):
        from repro.core import score_simulation
        from repro.costmodel import CostTable
        from repro.hardware import build_accelerator
        from repro.runtime import LatencyGreedyScheduler, Simulator
        from repro.workload import get_scenario, scale_rates

        if not hasattr(TestRandomScenarioSimulation, "_table"):
            TestRandomScenarioSimulation._table = CostTable()
        scenario = scale_rates(get_scenario(base), rate_factor)
        result = Simulator(
            scenario=scenario,
            system=build_accelerator(acc, pes),
            scheduler=LatencyGreedyScheduler(),
            duration_s=0.5,
            seed=seed,
            costs=TestRandomScenarioSimulation._table,
            frame_loss_probability=loss,
        ).run()

        # Outcome exclusivity.
        for r in result.requests:
            assert r.completed != r.dropped
        # No engine overlap.
        by_engine: dict[int, list] = {}
        for r in result.completed():
            by_engine.setdefault(r.accelerator_id, []).append(r)
        for rs in by_engine.values():
            rs.sort(key=lambda r: r.start_time_s)
            for a, b in zip(rs, rs[1:]):
                assert a.end_time_s <= b.start_time_s + 1e-12
        # Causality.
        for r in result.completed():
            assert r.start_time_s >= r.request_time_s - 1e-12
        # QoE denominators never undercount executions.
        for sm in scenario.models:
            assert len(result.completed(sm.code)) <= result.num_frames(sm.code)
        # Scores bounded.
        score = score_simulation(result)
        assert 0.0 <= score.overall <= 1.0
        assert 0.0 <= score.qoe <= 1.0


class TestPendingQueueProperties:
    @given(
        arrivals=st.lists(
            st.tuples(st.sampled_from(["A", "B", "C"]),
                      st.floats(0, 10)),
            min_size=1, max_size=50,
        )
    )
    def test_at_most_one_waiting_per_model(self, arrivals):
        q = PendingQueue()
        for i, (code, t) in enumerate(sorted(arrivals, key=lambda x: x[1])):
            q.offer(InferenceRequest(code, i, t, t + 1))
        waiting = q.waiting()
        codes = [r.model_code for r in waiting]
        assert len(codes) == len(set(codes))

    @given(n=st.integers(1, 30))
    def test_conservation(self, n):
        # Every offered request is either waiting or dropped.
        q = PendingQueue()
        for i in range(n):
            q.offer(InferenceRequest("A", i, float(i), float(i) + 1))
        assert len(q.waiting()) + len(q.dropped) == n
