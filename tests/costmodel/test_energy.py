"""Tests for the energy model."""

from __future__ import annotations

import pytest

from repro.costmodel import DEFAULT_ENERGY_MODEL, EnergyModel


class TestValidation:
    def test_rejects_negative_coefficients(self):
        with pytest.raises(ValueError):
            EnergyModel(mac_pj=-1.0)
        with pytest.raises(ValueError):
            EnergyModel(dram_pj_per_byte=-1.0)


class TestConversions:
    def test_compute_mj(self):
        em = EnergyModel(mac_pj=2.0)
        # 1e9 MACs at 2 pJ = 2 mJ.
        assert em.compute_mj(1e9) == pytest.approx(2.0)

    def test_buffer_mj(self):
        em = EnergyModel(buf_pj_per_byte=10.0)
        assert em.buffer_mj(1e8) == pytest.approx(1.0)

    def test_dram_mj(self):
        em = EnergyModel(dram_pj_per_byte=100.0)
        assert em.dram_mj(1e7) == pytest.approx(1.0)

    def test_leakage_mj(self):
        em = EnergyModel(leakage_w_per_pe=1e-3)
        # 1000 PEs at 1 mW for 1 s = 1 W*s = 1000 mJ.
        assert em.leakage_mj(1000, 1.0) == pytest.approx(1000.0)

    def test_zero_work_zero_energy(self):
        em = DEFAULT_ENERGY_MODEL
        assert em.compute_mj(0) == 0
        assert em.buffer_mj(0) == 0
        assert em.dram_mj(0) == 0
        assert em.leakage_mj(4096, 0) == 0

    def test_dram_costs_more_than_buffer(self):
        # The memory-hierarchy invariant the model must respect.
        em = DEFAULT_ENERGY_MODEL
        assert em.dram_pj_per_byte > em.buf_pj_per_byte > em.mac_pj / 10
