"""Tests for the per-layer and per-model analytical cost model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.costmodel import CostModel, Dataflow
from repro.nn import GraphBuilder, LayerSpec, OpType
from repro.zoo import build_model


def conv(cin=64, cout=64, hw=32, kernel=3):
    return LayerSpec(
        name="c", op=OpType.CONV2D, in_shape=(cin, hw, hw),
        out_shape=(cout, hw, hw), kernel=kernel, stride=1, padding=kernel // 2,
    )


def dwconv(c=256, hw=32):
    return LayerSpec(
        name="dw", op=OpType.DWCONV2D, in_shape=(c, hw, hw),
        out_shape=(c, hw, hw), kernel=3, stride=1, padding=1, groups=c,
    )


class TestValidation:
    def test_rejects_zero_pes(self):
        with pytest.raises(ValueError, match="num_pes"):
            CostModel(dataflow=Dataflow.WS, num_pes=0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            CostModel(dataflow=Dataflow.WS, num_pes=64, onchip_bw=0)

    def test_rejects_zero_buffer(self):
        with pytest.raises(ValueError, match="buffer"):
            CostModel(dataflow=Dataflow.WS, num_pes=64, buffer_bytes=0)


class TestLayerCost:
    def test_positive_latency_and_energy(self):
        cm = CostModel(dataflow=Dataflow.WS, num_pes=4096)
        cost = cm.layer_cost(conv())
        assert cost.latency_s > 0
        assert cost.energy_mj > 0

    def test_memory_only_layer_has_zero_compute(self):
        cm = CostModel(dataflow=Dataflow.WS, num_pes=4096)
        pool = LayerSpec(name="p", op=OpType.MAXPOOL, in_shape=(8, 16, 16),
                         out_shape=(8, 8, 8), kernel=2, stride=2)
        cost = cm.layer_cost(pool)
        assert cost.compute_cycles == 0
        assert cost.utilization == 0
        assert cost.latency_s > 0  # still moves data

    def test_utilization_bounded(self):
        cm = CostModel(dataflow=Dataflow.OS, num_pes=4096)
        cost = cm.layer_cost(conv(cin=256, cout=256, hw=64))
        assert 0.0 < cost.utilization <= 1.0

    def test_more_pes_never_slower(self):
        layer = conv(cin=128, cout=128, hw=64)
        for df in Dataflow:
            small = CostModel(dataflow=df, num_pes=1024).layer_cost(layer)
            big = CostModel(dataflow=df, num_pes=8192).layer_cost(layer)
            assert big.latency_s <= small.latency_s + 1e-12, df

    def test_ws_faster_than_os_on_fc(self):
        layer = LayerSpec(name="fc", op=OpType.FC, in_shape=(2048, 1, 1),
                          out_shape=(1024, 1, 1))
        ws = CostModel(dataflow=Dataflow.WS, num_pes=4096).layer_cost(layer)
        os_ = CostModel(dataflow=Dataflow.OS, num_pes=4096).layer_cost(layer)
        assert ws.latency_s < os_.latency_s

    def test_os_faster_than_ws_on_depthwise(self):
        layer = dwconv()
        ws = CostModel(dataflow=Dataflow.WS, num_pes=4096).layer_cost(layer)
        os_ = CostModel(dataflow=Dataflow.OS, num_pes=4096).layer_cost(layer)
        assert os_.latency_s < ws.latency_s

    def test_rs_lowest_energy_on_conv(self):
        layer = conv(cin=128, cout=128, hw=32)
        energies = {
            df: CostModel(dataflow=df, num_pes=4096).layer_cost(layer).energy_mj
            for df in Dataflow
        }
        assert energies[Dataflow.RS] == min(energies.values())

    @settings(max_examples=30, deadline=None)
    @given(
        cin=st.sampled_from([8, 32, 128]),
        cout=st.sampled_from([8, 32, 128]),
        hw=st.sampled_from([8, 32, 96]),
        df=st.sampled_from(list(Dataflow)),
        pes=st.sampled_from([512, 4096]),
    )
    def test_cost_always_finite_positive(self, cin, cout, hw, df, pes):
        cm = CostModel(dataflow=df, num_pes=pes)
        cost = cm.layer_cost(conv(cin=cin, cout=cout, hw=hw))
        assert cost.latency_s > 0 and cost.energy_mj > 0
        assert 0 <= cost.utilization <= 1


class TestModelCost:
    def small_graph(self):
        b = GraphBuilder("small", (3, 32, 32))
        b.conv(16, 3)
        b.pool(2)
        b.conv(32, 3)
        b.global_pool()
        b.fc(10)
        return b.build()

    def test_aggregates_layers(self):
        cm = CostModel(dataflow=Dataflow.WS, num_pes=1024)
        mc = cm.model_cost(self.small_graph())
        assert mc.latency_s == pytest.approx(
            sum(c.latency_cycles for c in mc.layer_costs) / 1e9
        )
        assert mc.energy_mj == pytest.approx(
            sum(c.energy_mj for c in mc.layer_costs)
        )

    def test_one_cost_per_layer(self):
        g = self.small_graph()
        cm = CostModel(dataflow=Dataflow.RS, num_pes=1024)
        assert len(cm.model_cost(g).layer_costs) == g.num_layers

    def test_model_utilization_bounded(self):
        cm = CostModel(dataflow=Dataflow.WS, num_pes=1024)
        mc = cm.model_cost(self.small_graph())
        assert 0 < mc.utilization <= 1

    def test_latency_ms_consistent(self):
        cm = CostModel(dataflow=Dataflow.WS, num_pes=1024)
        mc = cm.model_cost(self.small_graph())
        assert mc.latency_ms == pytest.approx(mc.latency_s * 1e3)


class TestCalibrationShape:
    """The latency regimes the paper's evaluation depends on (DESIGN.md)."""

    def test_pd_saturates_2k_engines(self):
        # PD at 30 FPS (33.3 ms deadline) must exceed ~2x the deadline on a
        # 2K-PE engine so the 4K J system saturates (Figure 6, 4K panel).
        cm = CostModel(dataflow=Dataflow.WS, num_pes=2048)
        lat = cm.model_cost(build_model("PD")).latency_s
        assert lat > 0.050

    def test_pd_borderline_on_4k_engines(self):
        # ... and sit near the deadline on a 4K-PE engine (8K J panel).
        cm = CostModel(dataflow=Dataflow.WS, num_pes=4096)
        lat = cm.model_cost(build_model("PD")).latency_s
        assert 0.025 < lat < 0.045

    def test_eye_pipeline_fails_on_1k_engines(self):
        # ES at 60 FPS (16.6 ms) cannot hold on quad-split 1K engines,
        # which is why G/H/I collapse on eye scenarios at 4K total PEs.
        cm = CostModel(dataflow=Dataflow.OS, num_pes=1024)
        lat = cm.model_cost(build_model("ES")).latency_s
        assert lat > 1 / 60

    def test_kd_trivially_fast_everywhere(self):
        for df in Dataflow:
            cm = CostModel(dataflow=df, num_pes=1024)
            assert cm.model_cost(build_model("KD")).latency_s < 0.005

    def test_heavy_models_fit_energy_budget_shape(self):
        # Per-inference energies must straddle meaningful fractions of the
        # 1500 mJ Enmax: heavy models in the hundreds of mJ.
        cm = CostModel(dataflow=Dataflow.WS, num_pes=4096)
        pd = cm.model_cost(build_model("PD")).energy_mj
        kd = cm.model_cost(build_model("KD")).energy_mj
        assert 200 < pd < 1500
        assert kd < 5
