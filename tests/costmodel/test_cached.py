"""Tests for the dispatch-path cost cache layer."""

from __future__ import annotations

import pytest

from repro.costmodel import (
    CachedCostTable,
    CostTable,
    Dataflow,
    DvfsPoint,
    UncachedCostTable,
)
from repro.nn import ModelGraph
from repro.runtime import split_graph
from repro.workload import UNIT_MODELS


class TestCachedCostTable:
    def test_first_lookup_misses_then_hits(self):
        table = CachedCostTable()
        a = table.cost("HT", Dataflow.WS, 2048)
        assert (table.stats.hits, table.stats.misses) == (0, 1)
        b = table.cost("HT", Dataflow.WS, 2048)
        assert b is a
        assert (table.stats.hits, table.stats.misses) == (1, 1)
        assert table.stats.hit_rate == pytest.approx(0.5)

    def test_matches_base_table_values(self):
        base, cached = CostTable(), CachedCostTable()
        for code in ("HT", "SR", "DE"):
            for dataflow in Dataflow:
                expected = base.cost(code, dataflow, 2048)
                got = cached.cost(code, dataflow, 2048)
                assert got.latency_s == expected.latency_s
                assert got.energy_mj == expected.energy_mj

    def test_dvfs_states_cached_independently(self):
        table = CachedCostTable()
        sub = type("Sub", (), {"dataflow": Dataflow.WS, "num_pes": 2048})()
        eco = DvfsPoint("eco", 0.5)
        nominal = table.engine_cost("HT", sub)
        slow = table.engine_cost("HT", sub, eco)
        assert slow.latency_s == pytest.approx(2 * nominal.latency_s)
        assert table.engine_cost("HT", sub, eco) is slow
        assert table.stats.hits == 1

    def test_same_name_different_scale_not_conflated(self):
        # The memo keys on the DvfsPoint value, not its name.
        table = CachedCostTable()
        sub = type("Sub", (), {"dataflow": Dataflow.WS, "num_pes": 2048})()
        fast = table.engine_cost("HT", sub, DvfsPoint("boost", 1.3))
        slow = table.engine_cost("HT", sub, DvfsPoint("boost", 1.1))
        assert slow.latency_s > fast.latency_s
        assert table.stats.misses == 2

    def test_registered_segment_graphs_priceable(self):
        graph = UNIT_MODELS["PD"].graph
        pieces = split_graph(graph, 2)
        table = CachedCostTable()
        table.register_graph("PD.0", pieces[0])
        table.register_graph("PD.1", pieces[1])
        assert table.knows("PD.0") and not table.knows("PD")
        whole = table.cost("PD", Dataflow.WS, 2048)
        seg = [
            table.cost(code, Dataflow.WS, 2048) for code in ("PD.0", "PD.1")
        ]
        # Per-layer costs are additive, so segments sum to the whole.
        assert sum(c.latency_s for c in seg) == pytest.approx(whole.latency_s)
        assert sum(c.energy_mj for c in seg) == pytest.approx(whole.energy_mj)

    def test_same_graph_reregistration_is_noop(self):
        # Segment plans are deterministic, so a table shared across two
        # segmented runs is offered identical pieces; the second offer
        # must not fail the run.
        graph = UNIT_MODELS["PD"].graph
        table = CachedCostTable()
        table.register_graph("PD.0", graph)
        table.register_graph("PD.0", graph)
        assert table.knows("PD.0")

    def test_conflicting_registration_rejected(self):
        # A *different* graph under an existing code is a stale-split
        # hazard, not benign reuse.
        table = CachedCostTable()
        table.register_graph("PD.0", UNIT_MODELS["PD"].graph)
        with pytest.raises(ValueError, match="already registered"):
            table.register_graph("PD.0", UNIT_MODELS["HT"].graph)

    def test_unknown_code_falls_through_to_base_error(self):
        with pytest.raises(KeyError, match="unknown task code"):
            CachedCostTable().cost("NOPE", Dataflow.WS, 2048)

    def test_wraps_existing_base_table(self):
        base = CostTable()
        warm = base.cost("HT", Dataflow.WS, 2048)
        cached = CachedCostTable(base=base)
        assert cached.cost("HT", Dataflow.WS, 2048) is warm


class TestUncachedCostTable:
    def test_recomputes_every_query(self):
        table = UncachedCostTable()
        a = table.cost("HT", Dataflow.WS, 2048)
        b = table.cost("HT", Dataflow.WS, 2048)
        assert table.queries == 2
        assert a is not b  # fresh analysis each time
        assert a.latency_s == b.latency_s

    def test_values_match_memoised_table(self):
        base = CostTable()
        uncached = UncachedCostTable()
        got = uncached.cost("DE", Dataflow.OS, 4096)
        expected = base.cost("DE", Dataflow.OS, 4096)
        assert got.latency_s == expected.latency_s
        assert got.energy_mj == expected.energy_mj

    def test_unknown_code_raises(self):
        with pytest.raises(KeyError, match="unknown task code"):
            UncachedCostTable().cost("NOPE", Dataflow.WS, 2048)


def test_segment_graph_type_sanity():
    # split_graph returns ModelGraph pieces the cache can analyse.
    pieces = split_graph(UNIT_MODELS["PD"].graph, 2)
    assert all(isinstance(p, ModelGraph) for p in pieces)
