"""DenseCostView prices exactly like the keyed cache it flattens.

The dense per-fleet view is a pure layout change: every
``(task, engine, DVFS point)`` it answers must be the *same float* the
keyed :meth:`CachedCostTable.cost` / ``engine_cost`` path returns, on
both its plain-tuple (scalar / narrow fleet) and numpy (wide fleet)
forms, including rows it fills lazily on a cache miss.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.costmodel import (
    CachedCostTable,
    CostTable,
    Dataflow,
    DenseCostView,
)
from repro.costmodel.dvfs import DEFAULT_DVFS_POINTS
from repro.hardware import ACCELERATOR_IDS, build_accelerator
from repro.hardware.accelerator import (
    AcceleratorStyle,
    AcceleratorSystem,
    SubAccelerator,
)
from repro.workload import UNIT_MODELS

ALL_POINTS = (None,) + DEFAULT_DVFS_POINTS


def wide_system(num_engines: int = 12) -> AcceleratorSystem:
    """A synthetic fleet wider than VECTOR_WIDTH (real systems top out
    at 4 engines, which never exercises the numpy reduction)."""
    subs = tuple(
        SubAccelerator(
            index=i,
            dataflow=(Dataflow.WS, Dataflow.OS, Dataflow.RS)[i % 3],
            num_pes=512 * (1 + i % 4),
        )
        for i in range(num_engines)
    )
    return AcceleratorSystem(
        acc_id="T",
        style=AcceleratorStyle.HDA,
        total_pes=sum(s.num_pes for s in subs),
        subs=subs,
    )


@pytest.mark.parametrize("acc_id", sorted(ACCELERATOR_IDS))
def test_view_matches_keyed_lookup_everywhere(acc_id):
    """Every (zoo task, engine, point): view floats == keyed-path floats.

    The reference table is a separate instance, so the comparison
    catches any divergence in how the view derives (or lazily fills) a
    row — both sides must arrive at the identical ModelCost-derived
    floats independently.
    """
    system = build_accelerator(acc_id, 8192)
    table = CachedCostTable(base=CostTable())
    reference = CachedCostTable(base=CostTable())
    view = table.dense_view(system)
    assert isinstance(view, DenseCostView)
    for task_code in sorted(UNIT_MODELS):
        for dvfs in ALL_POINTS:
            lats, ens, lat_arr, en_arr = view.row(task_code, dvfs)
            for sub in system.subs:
                expected = reference.engine_cost(task_code, sub, dvfs)
                assert lats[sub.index] == expected.latency_s
                assert ens[sub.index] == expected.energy_mj
                # float64 stores Python floats exactly: the ndarray
                # forms must be bit-equal, not merely close.
                assert float(lat_arr[sub.index]) == expected.latency_s
                assert float(en_arr[sub.index]) == expected.energy_mj
                scalar = view.latency_energy(task_code, sub.index, dvfs)
                assert scalar == (expected.latency_s, expected.energy_mj)


def test_lazy_fill_goes_through_the_cache():
    """A row miss fills through ``_lookup``: misses count per engine,
    later row hits count as hits, and the keyed path then answers from
    the same entries (no double computation, no stats skew)."""
    system = build_accelerator("J", 8192)
    table = CachedCostTable(base=CostTable())
    view = table.dense_view(system)
    assert table.stats.lookups == 0

    view.row("HT", None)
    assert table.stats.misses == system.num_subs
    assert table.stats.hits == 0

    view.row("HT", None)
    assert table.stats.misses == system.num_subs
    assert table.stats.hits == 1

    # The keyed path now hits the entries the fill populated.
    before = table.stats.misses
    for sub in system.subs:
        table.engine_cost("HT", sub, None)
    assert table.stats.misses == before


@pytest.mark.parametrize("width", [2, 4, 12, 16])
def test_best_engine_matches_min_by_latency_then_index(width):
    """Both sweep forms pick min-by-(latency, index) on every subset.

    Widths straddle VECTOR_WIDTH so the scalar loop and the numpy
    take/argmin path are each exercised against the same reference.
    """
    system = wide_system(width) if width > 4 else build_accelerator(
        {2: "J", 4: "M"}[width], 8192
    )
    table = CachedCostTable(base=CostTable())
    view = table.dense_view(system)
    indices = list(range(len(system.subs)))
    subsets = [indices] + [
        indices[lo:] for lo in range(1, len(indices))
    ] + [indices[::2], indices[1::2], [indices[-1]]]
    for task_code in ("HT", "OD", "SS"):
        for dvfs in (None, DEFAULT_DVFS_POINTS[0]):
            lats = view.row(task_code, dvfs)[0]
            for idle in subsets:
                expected = min(idle, key=lambda i: (lats[i], i))
                assert view.best_engine_index(
                    task_code, idle, dvfs
                ) == expected


def test_vectorised_ties_break_toward_lowest_index():
    """Identical engines tie on latency; argmin must take the first."""
    subs = tuple(
        SubAccelerator(index=i, dataflow=Dataflow.WS, num_pes=1024)
        for i in range(10)
    )
    system = AcceleratorSystem(
        acc_id="U", style=AcceleratorStyle.SFDA,
        total_pes=10240, subs=subs,
    )
    table = CachedCostTable(base=CostTable())
    view = table.dense_view(system)
    idle = list(range(10))  # > VECTOR_WIDTH: the numpy path
    assert view.best_engine_index("HT", idle, None) == 0
    assert view.best_engine_index("HT", idle[3:], None) == 3


def test_views_are_memoised_per_fleet_signature():
    table = CachedCostTable(base=CostTable())
    a = build_accelerator("J", 8192)
    b = build_accelerator("J", 8192)  # distinct object, same signature
    c = build_accelerator("K", 8192)
    view_a = table.dense_view(a)
    assert table.dense_view(a) is view_a  # identity fast path
    assert table.dense_view(b) is view_a  # signature memo
    assert table.dense_view(c) is not view_a


def test_view_array_forms_are_float64():
    system = build_accelerator("J", 8192)
    view = CachedCostTable(base=CostTable()).dense_view(system)
    _, _, lat_arr, en_arr = view.row("SS", DEFAULT_DVFS_POINTS[-1])
    assert lat_arr.dtype == np.float64
    assert en_arr.dtype == np.float64
    assert lat_arr.shape == (system.num_subs,)
