"""Tests for the DVFS extension."""

from __future__ import annotations

import pytest

from repro.costmodel import (
    DEFAULT_DVFS_POINTS,
    CostTable,
    Dataflow,
    DvfsPoint,
    best_point_for_slack,
    scale_cost,
)


@pytest.fixture(scope="module")
def nominal_cost():
    return CostTable().cost("DE", Dataflow.WS, 4096)


class TestDvfsPoint:
    def test_nominal_is_identity_scales(self):
        p = DvfsPoint("nominal", 1.0)
        assert p.latency_scale == 1.0
        assert p.dynamic_energy_scale == 1.0
        assert p.leakage_energy_scale == 1.0

    def test_slow_point_trades_latency_for_energy(self):
        p = DvfsPoint("eco", 0.5)
        assert p.latency_scale == 2.0
        assert p.dynamic_energy_scale == 0.25

    def test_rejects_extreme_scale(self):
        with pytest.raises(ValueError, match="frequency_scale"):
            DvfsPoint("x", 0.05)
        with pytest.raises(ValueError, match="frequency_scale"):
            DvfsPoint("x", 3.0)

    def test_default_ladder_sorted_and_contains_nominal(self):
        freqs = [p.frequency_scale for p in DEFAULT_DVFS_POINTS]
        assert freqs == sorted(freqs)
        assert 1.0 in freqs


class TestScaleCost:
    def test_eco_slower_but_cheaper(self, nominal_cost):
        eco = scale_cost(nominal_cost, DvfsPoint("eco", 0.5))
        assert eco.latency_s > nominal_cost.latency_s
        assert eco.energy_mj < nominal_cost.energy_mj

    def test_boost_faster_but_hotter(self, nominal_cost):
        boost = scale_cost(nominal_cost, DvfsPoint("boost", 1.3))
        assert boost.latency_s < nominal_cost.latency_s
        assert boost.energy_mj > nominal_cost.energy_mj

    def test_nominal_noop(self, nominal_cost):
        same = scale_cost(nominal_cost, DvfsPoint("nominal", 1.0))
        assert same.latency_s == pytest.approx(nominal_cost.latency_s)
        assert same.energy_mj == pytest.approx(nominal_cost.energy_mj)

    def test_leakage_fraction_validated(self, nominal_cost):
        with pytest.raises(ValueError, match="leakage_fraction"):
            scale_cost(nominal_cost, DvfsPoint("eco", 0.5),
                       leakage_fraction=1.5)

    def test_pure_leakage_workload_prefers_speed(self, nominal_cost):
        # With energy 100% leakage, slowing down only hurts.
        eco = scale_cost(nominal_cost, DvfsPoint("eco", 0.5),
                         leakage_fraction=1.0)
        assert eco.energy_mj > nominal_cost.energy_mj


class TestBestPointForSlack:
    def test_generous_slack_picks_eco(self, nominal_cost):
        point, scaled = best_point_for_slack(nominal_cost, slack_s=10.0)
        assert point.frequency_scale == 0.5
        assert scaled.latency_s <= 10.0

    def test_tight_slack_picks_faster_point(self, nominal_cost):
        tight = nominal_cost.latency_s * 1.1  # only ~nominal fits
        point, scaled = best_point_for_slack(nominal_cost, slack_s=tight)
        assert point.frequency_scale >= 1.0
        assert scaled.latency_s <= tight

    def test_impossible_slack_falls_back_to_fastest(self, nominal_cost):
        point, _ = best_point_for_slack(
            nominal_cost, slack_s=nominal_cost.latency_s / 100
        )
        assert point.frequency_scale == max(
            p.frequency_scale for p in DEFAULT_DVFS_POINTS
        )

    def test_nonpositive_slack_fastest(self, nominal_cost):
        point, _ = best_point_for_slack(nominal_cost, slack_s=0.0)
        assert point.frequency_scale == 1.3

    def test_chosen_point_is_cheapest_feasible(self, nominal_cost):
        slack = nominal_cost.latency_s * 1.5
        point, scaled = best_point_for_slack(nominal_cost, slack)
        for p in DEFAULT_DVFS_POINTS:
            candidate = scale_cost(nominal_cost, p)
            if candidate.latency_s <= slack:
                assert scaled.energy_mj <= candidate.energy_mj + 1e-12
