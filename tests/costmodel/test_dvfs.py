"""Tests for the DVFS extension."""

from __future__ import annotations

import pytest

from repro.costmodel import (
    DEFAULT_DVFS_POINTS,
    CostTable,
    Dataflow,
    DvfsPoint,
    best_point_for_slack,
    scale_cost,
)


@pytest.fixture(scope="module")
def nominal_cost():
    return CostTable().cost("DE", Dataflow.WS, 4096)


class TestDvfsPoint:
    def test_nominal_is_identity_scales(self):
        p = DvfsPoint("nominal", 1.0)
        assert p.latency_scale == 1.0
        assert p.dynamic_energy_scale == 1.0
        assert p.leakage_energy_scale == 1.0

    def test_slow_point_trades_latency_for_energy(self):
        p = DvfsPoint("eco", 0.5)
        assert p.latency_scale == 2.0
        assert p.dynamic_energy_scale == 0.25

    def test_rejects_extreme_scale(self):
        with pytest.raises(ValueError, match="frequency_scale"):
            DvfsPoint("x", 0.05)
        with pytest.raises(ValueError, match="frequency_scale"):
            DvfsPoint("x", 3.0)

    def test_default_ladder_sorted_and_contains_nominal(self):
        freqs = [p.frequency_scale for p in DEFAULT_DVFS_POINTS]
        assert freqs == sorted(freqs)
        assert 1.0 in freqs


class TestScaleCost:
    def test_eco_slower_but_cheaper(self, nominal_cost):
        eco = scale_cost(nominal_cost, DvfsPoint("eco", 0.5))
        assert eco.latency_s > nominal_cost.latency_s
        assert eco.energy_mj < nominal_cost.energy_mj

    def test_boost_faster_but_hotter(self, nominal_cost):
        boost = scale_cost(nominal_cost, DvfsPoint("boost", 1.3))
        assert boost.latency_s < nominal_cost.latency_s
        assert boost.energy_mj > nominal_cost.energy_mj

    def test_nominal_noop(self, nominal_cost):
        same = scale_cost(nominal_cost, DvfsPoint("nominal", 1.0))
        assert same.latency_s == pytest.approx(nominal_cost.latency_s)
        assert same.energy_mj == pytest.approx(nominal_cost.energy_mj)

    def test_leakage_fraction_validated(self, nominal_cost):
        with pytest.raises(ValueError, match="leakage_fraction"):
            scale_cost(nominal_cost, DvfsPoint("eco", 0.5),
                       leakage_fraction=1.5)

    def test_pure_leakage_workload_prefers_speed(self, nominal_cost):
        # With energy 100% leakage, slowing down only hurts.
        eco = scale_cost(nominal_cost, DvfsPoint("eco", 0.5),
                         leakage_fraction=1.0)
        assert eco.energy_mj > nominal_cost.energy_mj


class TestBestPointForSlack:
    def test_generous_slack_picks_eco(self, nominal_cost):
        point, scaled = best_point_for_slack(nominal_cost, slack_s=10.0)
        assert point.frequency_scale == 0.5
        assert scaled.latency_s <= 10.0

    def test_tight_slack_picks_faster_point(self, nominal_cost):
        tight = nominal_cost.latency_s * 1.1  # only ~nominal fits
        point, scaled = best_point_for_slack(nominal_cost, slack_s=tight)
        assert point.frequency_scale >= 1.0
        assert scaled.latency_s <= tight

    def test_impossible_slack_falls_back_to_fastest(self, nominal_cost):
        point, _ = best_point_for_slack(
            nominal_cost, slack_s=nominal_cost.latency_s / 100
        )
        assert point.frequency_scale == max(
            p.frequency_scale for p in DEFAULT_DVFS_POINTS
        )

    def test_nonpositive_slack_fastest(self, nominal_cost):
        point, _ = best_point_for_slack(nominal_cost, slack_s=0.0)
        assert point.frequency_scale == 1.3

    def test_chosen_point_is_cheapest_feasible(self, nominal_cost):
        slack = nominal_cost.latency_s * 1.5
        point, scaled = best_point_for_slack(nominal_cost, slack)
        for p in DEFAULT_DVFS_POINTS:
            candidate = scale_cost(nominal_cost, p)
            if candidate.latency_s <= slack:
                assert scaled.energy_mj <= candidate.energy_mj + 1e-12


class TestScaleCostConsistency:
    """The re-derived cost is internally consistent at every point.

    Historically only the two totals were scaled: ``layer_costs`` and
    ``utilization`` stayed nominal, so summing layers at a non-nominal
    point silently returned nominal numbers.
    """

    @pytest.mark.parametrize(
        "point", DEFAULT_DVFS_POINTS, ids=lambda p: p.name
    )
    def test_layer_sums_match_model_totals(self, nominal_cost, point):
        scaled = scale_cost(nominal_cost, point)
        assert sum(
            lc.latency_s for lc in scaled.layer_costs
        ) == pytest.approx(scaled.latency_s)
        assert sum(
            lc.energy_mj for lc in scaled.layer_costs
        ) == pytest.approx(scaled.energy_mj)

    @pytest.mark.parametrize(
        "point", DEFAULT_DVFS_POINTS, ids=lambda p: p.name
    )
    def test_totals_follow_the_scaling_laws(self, nominal_cost, point):
        scaled = scale_cost(nominal_cost, point)
        assert scaled.latency_s == pytest.approx(
            nominal_cost.latency_s * point.latency_scale
        )
        lf = 0.1
        factor = (
            (1 - lf) * point.dynamic_energy_scale
            + lf * point.leakage_energy_scale
        )
        assert scaled.energy_mj == pytest.approx(
            nominal_cost.energy_mj * factor
        )

    @pytest.mark.parametrize(
        "point", DEFAULT_DVFS_POINTS, ids=lambda p: p.name
    )
    def test_utilization_rederived_not_copied(self, nominal_cost, point):
        scaled = scale_cost(nominal_cost, point)
        # util = macs / (cycles * pes) and cycles scale with latency.
        assert scaled.utilization == pytest.approx(
            min(
                1.0,
                nominal_cost.utilization
                * nominal_cost.latency_s
                / scaled.latency_s,
            )
        )
        if point.frequency_scale < 1.0:
            assert scaled.utilization < nominal_cost.utilization

    @pytest.mark.parametrize(
        "point", DEFAULT_DVFS_POINTS, ids=lambda p: p.name
    )
    def test_per_layer_energy_uniformly_scaled(self, nominal_cost, point):
        scaled = scale_cost(nominal_cost, point)
        lf = 0.1
        factor = (
            (1 - lf) * point.dynamic_energy_scale
            + lf * point.leakage_energy_scale
        )
        for before, after in zip(
            nominal_cost.layer_costs, scaled.layer_costs
        ):
            assert after.energy_mj == pytest.approx(
                before.energy_mj * factor
            )

    def test_layerless_cost_still_scales_totals(self, nominal_cost):
        from dataclasses import replace

        bare = replace(nominal_cost, layer_costs=())
        point = DvfsPoint("eco", 0.5)
        scaled = scale_cost(bare, point)
        assert scaled.latency_s == pytest.approx(bare.latency_s * 2.0)
        assert scaled.layer_costs == ()

    @pytest.mark.parametrize(
        "code", ["HT", "ES", "GE", "KD", "SR", "SS", "OD", "AS", "DE",
                 "DR", "PD"],
    )
    def test_every_unit_model_consistent_across_the_ladder(self, code):
        cost = CostTable().cost(code, Dataflow.WS, 4096)
        for point in DEFAULT_DVFS_POINTS:
            scaled = scale_cost(cost, point)
            assert sum(
                lc.latency_s for lc in scaled.layer_costs
            ) == pytest.approx(scaled.latency_s)
            assert sum(
                lc.energy_mj for lc in scaled.layer_costs
            ) == pytest.approx(scaled.energy_mj)
