"""Tests for the dataflow specs: the WS/OS/RS behavioural contracts."""

from __future__ import annotations

import pytest

from repro.costmodel import DATAFLOW_SPECS, Dataflow
from repro.nn import LayerSpec, OpType


def conv(cin=64, cout=64, hw=32, kernel=3):
    return LayerSpec(
        name="c", op=OpType.CONV2D, in_shape=(cin, hw, hw),
        out_shape=(cout, hw, hw), kernel=kernel, stride=1, padding=kernel // 2,
    )


def dwconv(c=64, hw=32):
    return LayerSpec(
        name="dw", op=OpType.DWCONV2D, in_shape=(c, hw, hw),
        out_shape=(c, hw, hw), kernel=3, stride=1, padding=1, groups=c,
    )


def fc(cin=1024, cout=1024):
    return LayerSpec(
        name="fc", op=OpType.FC, in_shape=(cin, 1, 1), out_shape=(cout, 1, 1),
    )


def parallelism(df: Dataflow, layer: LayerSpec) -> float:
    return DATAFLOW_SPECS[df].usable_parallelism(layer, layer.conv_dims())


class TestSpecs:
    def test_all_three_registered(self):
        assert set(DATAFLOW_SPECS) == set(Dataflow)

    def test_efficiencies_in_range(self):
        for spec in DATAFLOW_SPECS.values():
            assert 0.0 < spec.mapping_efficiency <= 1.0

    def test_rs_has_best_reuse(self):
        # Eyeriss-style row stationary has the fewest buffer reads per MAC.
        rs = DATAFLOW_SPECS[Dataflow.RS].buf_reads_per_mac
        assert rs < DATAFLOW_SPECS[Dataflow.WS].buf_reads_per_mac
        assert rs < DATAFLOW_SPECS[Dataflow.OS].buf_reads_per_mac


class TestParallelismContracts:
    """The qualitative behaviours that drive the paper's results."""

    def test_ws_strong_on_channel_heavy_conv(self):
        layer = conv(cin=256, cout=256, hw=8)
        assert parallelism(Dataflow.WS, layer) > 4096

    def test_ws_weak_on_depthwise(self):
        # NVDLA-style engines are notoriously poor on depthwise conv.
        layer = dwconv(c=256, hw=32)
        assert parallelism(Dataflow.WS, layer) < 64

    def test_os_strong_on_depthwise(self):
        layer = dwconv(c=256, hw=32)
        assert parallelism(Dataflow.OS, layer) >= 1024

    def test_os_strong_on_large_spatial(self):
        layer = conv(cin=32, cout=32, hw=128)
        assert parallelism(Dataflow.OS, layer) > 4096

    def test_os_weak_on_fc(self):
        # A lone output pixel starves output-stationary engines.
        layer = fc(cin=4096, cout=512)
        assert parallelism(Dataflow.OS, layer) <= 16

    def test_ws_strong_on_fc(self):
        layer = fc(cin=4096, cout=512)
        assert parallelism(Dataflow.WS, layer) > 100_000

    def test_rs_balanced(self):
        # RS sits between the extremes on both pathological cases.
        dw, f = dwconv(c=256, hw=32), fc(cin=4096, cout=512)
        assert parallelism(Dataflow.RS, dw) > parallelism(Dataflow.WS, dw)
        assert parallelism(Dataflow.RS, f) > parallelism(Dataflow.OS, f)

    def test_parallelism_at_least_one(self):
        tiny = conv(cin=1, cout=1, hw=1, kernel=1)
        for df in Dataflow:
            assert parallelism(df, tiny) >= 1.0


class TestOperandReuse:
    def test_reuse_factors_at_least_one(self):
        layer = conv()
        dims = layer.conv_dims()
        for df, spec in DATAFLOW_SPECS.items():
            for r in spec.operand_reuse(layer, dims):
                assert r >= 1.0, df

    def test_ws_reuses_weights_spatially(self):
        layer = conv(hw=64)
        dims = layer.conv_dims()
        _, w_reuse, _ = DATAFLOW_SPECS[Dataflow.WS].operand_reuse(layer, dims)
        assert w_reuse == pytest.approx(64 * 64)

    def test_os_reuses_outputs_over_reduction(self):
        layer = conv(cin=128, kernel=3)
        dims = layer.conv_dims()
        _, _, o_reuse = DATAFLOW_SPECS[Dataflow.OS].operand_reuse(layer, dims)
        assert o_reuse == pytest.approx(128 * 9)
