"""Tests for the memoised cost table."""

from __future__ import annotations

import pytest

from repro.costmodel import CostTable, Dataflow


class TestCostTable:
    def test_cache_returns_same_object(self):
        t = CostTable()
        a = t.cost("KD", Dataflow.WS, 1024)
        b = t.cost("KD", Dataflow.WS, 1024)
        assert a is b

    def test_distinct_keys_distinct_costs(self):
        t = CostTable()
        a = t.cost("KD", Dataflow.WS, 1024)
        b = t.cost("KD", Dataflow.WS, 2048)
        c = t.cost("KD", Dataflow.OS, 1024)
        assert a is not b and a is not c

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError, match="unknown task code"):
            CostTable().cost("XX", Dataflow.WS, 1024)

    def test_latency_shortcut(self):
        t = CostTable()
        assert t.latency_s("KD", Dataflow.WS, 1024) == (
            t.cost("KD", Dataflow.WS, 1024).latency_s
        )

    def test_energy_shortcut(self):
        t = CostTable()
        assert t.energy_mj("KD", Dataflow.RS, 1024) == (
            t.cost("KD", Dataflow.RS, 1024).energy_mj
        )

    def test_energy_independent_of_pe_count_within_tolerance(self):
        # MAC/buffer/DRAM energy is PE-count independent; only leakage
        # varies, and it is a small fraction.
        t = CostTable()
        e_small = t.energy_mj("DR", Dataflow.WS, 1024)
        e_big = t.energy_mj("DR", Dataflow.WS, 8192)
        assert abs(e_small - e_big) / e_big < 0.25
